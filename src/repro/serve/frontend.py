"""Stdlib-only JSON-lines front end for the compilation service.

One request per line, one JSON response per line — a protocol thin enough
to drive with ``echo`` + a pipe, a TCP socket, or any language's stdlib.

Request schema (``id`` is optional and echoed back verbatim):

``{"op": "compile", "source": "<Fig. 2 program>", "options": {...}, "id": 1}``
    Compile a chain program.  ``options`` are the
    :class:`~repro.compiler.pipeline.CompileOptions` knobs (``expand_by``,
    ``num_training_instances``, ``size_range``, ``objective``, ``seed``,
    ``simplify``, ``variant_space``, ``max_variants`` — the last two pick
    the candidate-generation strategy, letting clients compile long chains
    through the DP-seeded space — and ``backend``, the execution-backend
    strategy ``execute`` runs under: ``"reference"``, ``"blas"``, or
    ``"auto"``).  Response carries a ``handle`` (the content address of
    the compilation) plus the selected variant names and symbolic costs.

``{"op": "dispatch", "handle": "...", "sizes": [500, 80, 500], "id": 2}``
    Run-time dispatch for one instance: answers which variant the
    generated dispatch function would pick, and its estimated cost.
    ``source`` may be supplied instead of ``handle`` (compile-if-needed).

``{"op": "execute", "handle": "...", "arrays": [...], "id": 5}``
    Wire-level execution against a previously compiled handle: the client
    ships one stored array per chain operand, the server loads the
    compiled artifact, dispatches on the inferred sizes, runs the chosen
    variant, and ships the result back.  Each array is either a nested
    JSON list or an ``{"encoding": "npy", "data": "<base64>"}`` object
    (base64 of the standard ``.npy`` byte stream — exactly what
    ``numpy.save`` writes).  The response's ``result`` uses the same
    encoding as the first request array (override with
    ``"result_encoding": "npy" | "list"``).  ``source`` may replace
    ``handle`` (compile-if-needed), as for ``dispatch``.

``{"op": "stats", "id": 3}``
    Service metrics (queue depth, coalesce rate, latency percentiles),
    session cache counters, and ``execution`` — per-backend executed
    instance counts aggregated over the live handle registry plus the
    most recent replay wall time (how ``auto``'s measured backend choices
    surface in production).  The unified ``obs`` snapshot additionally
    carries the ``calibration`` collector scope (calibrated-estimator
    table size, sample counts, and refresh age) and the per-dispatcher
    re-selection counters under ``runtime`` once feedback-directed
    dispatch is active — additive fields, so the protocol stays at 3.

``{"op": "metrics", "id": 6}``
    The process-wide :mod:`repro.obs` registry rendered as Prometheus
    text exposition format (the same body ``repro serve --metrics-port``
    serves over HTTP), returned as the ``"text"`` field.

``{"op": "warm", "id": 4}``
    Re-run cache warm-up from the session's backend; answers the count.

Responses are ``{"id": ..., "ok": true, ...}`` or
``{"id": ..., "ok": false, "error": "...", "error_type": "..."}``.  Malformed
JSON and unknown ops are answered in-band, never by closing the stream.

:func:`serve_stream` drives the protocol over file objects (the
``repro serve`` stdin/stdout mode); :func:`make_tcp_server` wraps it in a
threading TCP server (``repro serve --port N``), one connection per client,
all connections multiplexed onto one :class:`CompileService` worker pool.
"""

from __future__ import annotations

import base64
import io
import json
import socketserver
import time
from typing import IO, Optional

import numpy as np

from repro.serve.service import CompileService

#: Protocol revision, reported by ``stats`` responses.  2 added the
#: wire-level ``execute`` op (handle + npy/base64 arrays); 3 added the
#: ``metrics`` op (Prometheus text) and the unified ``obs`` snapshot in
#: ``stats``.
PROTOCOL_VERSION = 3


# -- array codec (the execute op's payload format) ---------------------------

def encode_array(array: np.ndarray, encoding: str = "npy") -> object:
    """Encode one array for the JSON-lines wire.

    ``"npy"`` wraps the standard ``numpy.save`` byte stream in base64 —
    compact, dtype/shape-exact, loadable by any numpy.  ``"list"`` is the
    nested-list form for hand-written clients.
    """
    array = np.ascontiguousarray(array)
    if encoding == "list":
        return array.tolist()
    if encoding == "npy":
        buffer = io.BytesIO()
        np.save(buffer, array, allow_pickle=False)
        return {
            "encoding": "npy",
            "data": base64.b64encode(buffer.getvalue()).decode("ascii"),
        }
    raise ValueError(f"unknown array encoding {encoding!r}; use 'npy' or 'list'")


def decode_array(payload: object) -> np.ndarray:
    """Decode one wire array (nested lists, or an ``npy`` base64 object)."""
    if isinstance(payload, (list, tuple)):
        return np.asarray(payload, dtype=np.float64)
    if isinstance(payload, dict):
        encoding = payload.get("encoding", "npy")
        data = payload.get("data")
        if encoding == "list":
            return np.asarray(data, dtype=np.float64)
        if encoding == "npy":
            if not isinstance(data, str):
                raise ValueError("'npy' array payload needs base64 string 'data'")
            try:
                raw = base64.b64decode(data, validate=True)
                array = np.load(io.BytesIO(raw), allow_pickle=False)
            except Exception as exc:
                raise ValueError(f"undecodable npy array payload: {exc}") from exc
            return np.asarray(array, dtype=np.float64)
        raise ValueError(f"unknown array encoding {encoding!r}")
    raise ValueError(
        "each array must be a nested JSON list or an "
        '{"encoding": "npy", "data": "<base64>"} object'
    )


def _error(payload_id, message: str, exc: Optional[BaseException] = None) -> dict:
    response = {"id": payload_id, "ok": False, "error": message}
    if exc is not None:
        response["error_type"] = type(exc).__name__
    return response


def _parse_single_chain(source: str):
    """A Fig. 2 program's single chain (the serving unit of compilation)."""
    from repro.errors import ParseError
    from repro.ir.parser import parse_program

    program = parse_program(source)
    terms = program.expression.terms
    if len(terms) > 1 or terms[0].coefficient != 1.0:
        raise ParseError(
            "the serve protocol compiles one chain per request; "
            "split multi-term expressions into one request per term"
        )
    return program.chain


def _handle_compile(service: CompileService, payload: dict) -> dict:
    source = payload.get("source")
    if not isinstance(source, str) or not source.strip():
        raise ValueError("'compile' needs a non-empty string 'source'")
    options = payload.get("options") or {}
    if not isinstance(options, dict):
        raise ValueError("'options' must be an object")
    if "size_range" in options and options["size_range"] is not None:
        options["size_range"] = tuple(options["size_range"])
    chain = _parse_single_chain(source)
    start = time.perf_counter()
    future = service.submit(chain, **options)
    generated = future.result()
    elapsed_ms = 1e3 * (time.perf_counter() - start)
    response = {
        "ok": True,
        "handle": getattr(future, "handle", None),
        "chain": str(generated.chain),
        "variants": [variant.name for variant in generated.variants],
        "num_variants": len(generated.variants),
        "elapsed_ms": round(elapsed_ms, 3),
    }
    if payload.get("artifact"):
        # Ship the full versioned CompiledProgram so the client can run
        # dispatch/execute offline (repro.api.load_program on the saved
        # object, no further server round-trips).
        response["artifact"] = json.loads(generated.to_program().dumps())
    return response


def _resolve_handle(service: CompileService, payload: dict, op: str) -> str:
    """The request's handle, compiling ``source`` first when supplied."""
    handle = payload.get("handle")
    if handle is not None:
        return handle
    source = payload.get("source")
    if not isinstance(source, str) or not source.strip():
        raise ValueError(f"{op!r} needs a 'handle' or a 'source'")
    chain = _parse_single_chain(source)
    future = service.submit(chain)
    future.result()
    return getattr(future, "handle", None)


def _handle_dispatch(service: CompileService, payload: dict) -> dict:
    sizes = payload.get("sizes")
    if not isinstance(sizes, (list, tuple)) or not sizes:
        raise ValueError("'dispatch' needs a non-empty 'sizes' array")
    handle = _resolve_handle(service, payload, "dispatch")
    variant, cost = service.dispatch(handle, [int(s) for s in sizes])
    return {
        "ok": True,
        "handle": handle,
        "variant": variant.name,
        "cost": float(cost),
    }


def _handle_execute(service: CompileService, payload: dict) -> dict:
    arrays_payload = payload.get("arrays")
    if not isinstance(arrays_payload, list) or not arrays_payload:
        raise ValueError("'execute' needs a non-empty 'arrays' list")
    handle = _resolve_handle(service, payload, "execute")
    if service.lookup(handle) is None:
        # Reject unknown/evicted handles before paying the payload decode
        # (base64 .npy operands can be large).
        raise KeyError(f"unknown compilation handle {handle!r}")
    arrays = [decode_array(entry) for entry in arrays_payload]
    start = time.perf_counter()
    # One live runtime per handle: the registry's dispatcher memoizes the
    # (sizes -> variant, plan) decision, so repeated same-size requests
    # skip the cost sweep and execute a pre-compiled plan.
    sizes, variant, cost, result = service.execute(handle, arrays)
    elapsed_ms = 1e3 * (time.perf_counter() - start)
    encoding = payload.get("result_encoding")
    if encoding is None:
        # Mirror the first request array's encoding: bare lists and
        # {"encoding": "list"} objects both answer in lists.
        first = arrays_payload[0]
        if isinstance(first, list):
            encoding = "list"
        elif isinstance(first, dict):
            encoding = first.get("encoding", "npy")
        else:
            encoding = "npy"
    return {
        "ok": True,
        "handle": handle,
        "sizes": [int(s) for s in sizes],
        "variant": variant.name,
        "cost": float(cost),
        "result": encode_array(result, encoding),
        "elapsed_ms": round(elapsed_ms, 3),
    }


def handle_request(service: CompileService, payload: dict) -> dict:
    """Answer one decoded request object (never raises)."""
    payload_id = payload.get("id") if isinstance(payload, dict) else None
    if not isinstance(payload, dict):
        return _error(None, "request must be a JSON object")
    op = payload.get("op")
    try:
        if op == "compile":
            response = _handle_compile(service, payload)
        elif op == "dispatch":
            response = _handle_dispatch(service, payload)
        elif op == "execute":
            response = _handle_execute(service, payload)
        elif op == "stats":
            response = {
                "ok": True,
                "protocol_version": PROTOCOL_VERSION,
                **service.stats(),
            }
        elif op == "metrics":
            from repro.obs import render_prometheus

            response = {"ok": True, "text": render_prometheus()}
        elif op == "warm":
            response = {"ok": True, "warmed": service.session.warm()}
        elif op == "ping":
            response = {"ok": True, "pong": True}
        else:
            return _error(
                payload_id,
                f"unknown op {op!r}; expected "
                "compile|dispatch|execute|stats|metrics|warm|ping",
            )
    except KeyError as exc:
        return _error(payload_id, str(exc.args[0]) if exc.args else str(exc), exc)
    except Exception as exc:
        return _error(payload_id, str(exc), exc)
    response["id"] = payload_id
    return response


def handle_line(service: CompileService, line: str) -> Optional[str]:
    """One protocol round: request line in, response line out.

    Returns ``None`` for blank lines (keep-alive friendly); malformed JSON
    is answered with an in-band error.
    """
    line = line.strip()
    if not line:
        return None
    try:
        payload = json.loads(line)
    except ValueError as exc:
        return json.dumps(_error(None, f"malformed JSON request: {exc}", exc))
    return json.dumps(handle_request(service, payload))


def serve_stream(
    service: CompileService,
    infile: IO[str],
    outfile: IO[str],
    *,
    max_requests: Optional[int] = None,
) -> int:
    """Serve JSON-lines over file objects until EOF; returns requests served.

    Responses are flushed per line so a piped client can converse
    interactively.  ``max_requests`` stops after that many non-blank lines
    (used by tests and batch drivers).
    """
    served = 0
    for line in infile:
        response = handle_line(service, line)
        if response is None:
            continue
        outfile.write(response + "\n")
        outfile.flush()
        served += 1
        if max_requests is not None and served >= max_requests:
            break
    return served


class _JsonLineHandler(socketserver.StreamRequestHandler):
    def handle(self) -> None:  # pragma: no cover - exercised via TCP tests
        service = self.server.compile_service  # type: ignore[attr-defined]
        for raw in self.rfile:
            response = handle_line(service, raw.decode("utf-8", "replace"))
            if response is None:
                continue
            try:
                self.wfile.write(response.encode() + b"\n")
                self.wfile.flush()
            except (BrokenPipeError, ConnectionResetError):
                return


class CompileServer(socketserver.ThreadingTCPServer):
    """Threading TCP server speaking the JSON-lines protocol.

    One handler thread per connection; every connection shares the single
    :class:`CompileService` (hence its queue bound, coalescing map, cache,
    and metrics).
    """

    allow_reuse_address = True
    daemon_threads = True

    def __init__(self, service: CompileService, host: str = "127.0.0.1", port: int = 0):
        super().__init__((host, port), _JsonLineHandler)
        self.compile_service = service

    @property
    def address(self) -> tuple[str, int]:
        return self.server_address[0], self.server_address[1]


def make_tcp_server(
    service: CompileService, host: str = "127.0.0.1", port: int = 0
) -> CompileServer:
    """Bind a :class:`CompileServer` (``port=0`` picks a free port)."""
    return CompileServer(service, host, port)

"""Stdlib-only JSON-lines front end for the compilation service.

One request per line, one JSON response per line — a protocol thin enough
to drive with ``echo`` + a pipe, a TCP socket, or any language's stdlib.

Request schema (``id`` is optional and echoed back verbatim):

``{"op": "compile", "source": "<Fig. 2 program>", "options": {...}, "id": 1}``
    Compile a chain program.  ``options`` are the
    :class:`~repro.compiler.pipeline.CompileOptions` knobs (``expand_by``,
    ``num_training_instances``, ``size_range``, ``objective``, ``seed``,
    ``simplify``, ``variant_space``, ``max_variants`` — the last two pick
    the candidate-generation strategy, letting clients compile long chains
    through the DP-seeded space — and ``backend``, the execution-backend
    strategy ``execute`` runs under: ``"reference"``, ``"blas"``, or
    ``"auto"``).  Response carries a ``handle`` (the content address of
    the compilation) plus the selected variant names and symbolic costs.

``{"op": "dispatch", "handle": "...", "sizes": [500, 80, 500], "id": 2}``
    Run-time dispatch for one instance: answers which variant the
    generated dispatch function would pick, and its estimated cost.
    ``source`` may be supplied instead of ``handle`` (compile-if-needed).

``{"op": "execute", "handle": "...", "arrays": [...], "id": 5}``
    Wire-level execution against a previously compiled handle: the client
    ships one stored array per chain operand, the server loads the
    compiled artifact, dispatches on the inferred sizes, runs the chosen
    variant, and ships the result back.  Each array is a nested JSON
    list, an ``{"encoding": "npy", "data": "<base64>"}`` object (base64
    of the standard ``.npy`` byte stream), or — for same-host clients —
    an ``{"encoding": "shm", "name", "shape", "dtype"}`` object naming a
    :mod:`multiprocessing.shared_memory` segment the server maps and
    executes on directly, zero-copy (:mod:`repro.serve.shm`).  The
    response's ``result`` uses the same encoding as the first request
    array (override with ``"result_encoding": "shm" | "npy" | "list"``);
    a ``result_encoding`` of ``"shm"`` silently degrades to ``"npy"``
    when shared memory is unavailable — the payload always carries its
    actual encoding.

``{"op": "release", "name": "psm_...", "id": 7}``
    Free a server-created response segment eagerly (the well-behaved
    client's half of the shm ownership protocol; the TTL reaper covers
    crashed clients).  Answers ``{"released": true|false}``.

``{"op": "stats", "id": 3}``
    Service metrics (queue depth, coalesce rate, latency percentiles),
    session cache counters, ``execution`` (per-backend executed instance
    counts over the live handle registry), and ``transports`` — the
    operand encodings this server can decode.  The unified ``obs``
    snapshot additionally carries the ``serve.wire_bytes`` counters and
    the ``serve.connections`` gauge the front ends maintain.

``{"op": "metrics", "id": 6}``
    The process-wide :mod:`repro.obs` registry rendered as Prometheus
    text exposition format (the same body ``repro serve --metrics-port``
    serves over HTTP), returned as the ``"text"`` field.

``{"op": "warm", "id": 4}``
    Re-run cache warm-up from the session's backend; answers the count.

Responses are ``{"id": ..., "ok": true, ...}`` or
``{"id": ..., "ok": false, "error": "...", "error_type": "..."}``.  Malformed
JSON and unknown ops are answered in-band, never by closing the stream.

:func:`serve_stream` drives the protocol over file objects (the
``repro serve`` stdin/stdout mode); :func:`make_tcp_server` wraps it in a
threading TCP server (``repro serve --port N``), one connection per client,
all connections multiplexed onto one :class:`CompileService` worker pool.
:mod:`repro.serve.aserve` speaks the same protocol from a single asyncio
event loop (``repro serve --async`` / ``--http-port``).
"""

from __future__ import annotations

import base64
import io
import json
import socket
import socketserver
import threading
import time
from typing import IO, Callable, Optional, Sequence

import numpy as np

from repro.serve import shm as shm_transport
from repro.serve.metrics import connection_closed, connection_opened, record_wire
from repro.serve.service import CompileService

#: Protocol revision, reported by ``stats`` responses.  2 added the
#: wire-level ``execute`` op (handle + npy/base64 arrays); 3 added the
#: ``metrics`` op (Prometheus text) and the unified ``obs`` snapshot in
#: ``stats``; 4 added the zero-copy ``shm`` operand encoding, the
#: ``release`` op, and the ``transports`` negotiation field.
PROTOCOL_VERSION = 4

#: Bound on one protocol line (requests *and* responses).  A base64 npy
#: 1024x1024 double is ~11 MiB; 64 MiB leaves room for several large
#: operands per request while stopping a hostile or broken client from
#: ballooning a connection buffer without bound.
DEFAULT_MAX_LINE_BYTES = 64 * 1024 * 1024


def transports() -> list[str]:
    """Operand encodings this server can decode, preference-ordered.

    The negotiation half of the shm protocol: a client reads this from
    ``stats`` (or ``ping``) once per connection and picks the fastest
    transport both sides support, falling back down the list.
    """
    names = ["list", "npy"]
    if shm_transport.shm_available():
        names.append("shm")
    return names


# -- array codec (the execute op's payload format) ---------------------------

def as_wire_array(array: np.ndarray) -> np.ndarray:
    """``array`` ready for raw-bytes encoding, copying only when forced.

    C- and F-contiguous float arrays pass through untouched (the npy
    header records the storage order, so no re-layout is needed); only
    genuinely strided views pay a contiguity copy.  The no-copy guarantee
    is load-bearing for the serve data plane — a 1024x1024 double is 8 MiB
    of memcpy per avoidable copy — and regression-tested via
    ``np.shares_memory``.
    """
    array = np.asarray(array)
    if array.flags.c_contiguous or array.flags.f_contiguous:
        return array
    return np.ascontiguousarray(array)


def array_to_npy_bytes(array: np.ndarray) -> bytes:
    """The standard ``.npy`` byte stream, without the ``BytesIO`` detour.

    ``np.save`` writes header + data into a growing ``BytesIO`` and
    ``getvalue()`` copies the lot back out; here the (tiny) header is
    rendered once and joined directly with the array's existing buffer —
    one copy total, none for the header round-trip.
    """
    array = as_wire_array(array)
    header = io.BytesIO()
    np.lib.format.write_array_header_1_0(
        header, np.lib.format.header_data_from_array_1_0(array)
    )
    data = array if array.flags.c_contiguous else array.T
    return b"".join((header.getvalue(), memoryview(data).cast("B")))


def npy_bytes_to_array(raw: bytes) -> np.ndarray:
    """Decode an ``.npy`` byte stream as a zero-copy read-only view.

    The returned array aliases ``raw`` (kernels only read operands, so a
    read-only view feeds straight into execution); pickled payloads are
    rejected exactly like ``np.load(allow_pickle=False)``.
    """
    stream = io.BytesIO(raw)
    version = np.lib.format.read_magic(stream)
    if version == (1, 0):
        shape, fortran, dtype = np.lib.format.read_array_header_1_0(stream)
    elif version == (2, 0):
        shape, fortran, dtype = np.lib.format.read_array_header_2_0(stream)
    else:  # pragma: no cover - no writer emits 3.0 for plain dtypes
        stream.seek(0)
        return np.load(stream, allow_pickle=False)
    if dtype.hasobject:
        raise ValueError("object arrays cannot be decoded (allow_pickle=False)")
    offset = stream.tell()
    count = int(np.prod(shape, dtype=np.int64)) if shape else 1
    array = np.frombuffer(raw, dtype=dtype, count=count, offset=offset)
    array = array.reshape(shape, order="F" if fortran else "C")
    return array


def encode_array(
    array: np.ndarray,
    encoding: str = "npy",
    *,
    reaper: Optional[shm_transport.SegmentReaper] = None,
) -> object:
    """Encode one array for the JSON-lines wire.

    ``"npy"`` wraps the standard ``numpy.save`` byte stream in base64 —
    compact, dtype/shape-exact, loadable by any numpy.  ``"list"`` is the
    nested-list form for hand-written clients.  ``"shm"`` copies the
    array into a fresh shared-memory segment and ships only its name
    (same-host zero-copy; tracked by ``reaper`` — the server's TTL reaper
    by default — so orphans cannot leak); it degrades to ``"npy"`` when
    shared memory is unavailable or segment creation fails.
    """
    array = np.asarray(array)
    if encoding == "list":
        return array.tolist()
    if encoding == "shm":
        if shm_transport.shm_available():
            tracker = reaper if reaper is not None else shm_transport.default_reaper()
            try:
                payload, _ = shm_transport.create_segment_payload(
                    array, reaper=tracker
                )
            except Exception:
                pass  # degrade to npy below
            else:
                tracker.reap()
                return payload
        encoding = "npy"
    if encoding == "npy":
        return {
            "encoding": "npy",
            "data": base64.b64encode(array_to_npy_bytes(array)).decode("ascii"),
        }
    raise ValueError(
        f"unknown array encoding {encoding!r}; use 'npy', 'list', or 'shm'"
    )


def decode_operand(payload: object) -> tuple[np.ndarray, Optional[Callable[[], None]]]:
    """Decode one wire array zero-copy; returns ``(array, closer)``.

    The execute hot path: ``npy`` payloads decode as read-only views over
    the base64-decoded bytes, ``shm`` payloads map the named segment
    directly.  ``closer`` (when not ``None``) must be called once the
    arrays are no longer in use — it detaches the shm mapping.
    """
    if isinstance(payload, (list, tuple)):
        return np.asarray(payload, dtype=np.float64), None
    if isinstance(payload, dict):
        encoding = payload.get("encoding", "npy")
        data = payload.get("data")
        if encoding == "list":
            return np.asarray(data, dtype=np.float64), None
        if encoding == "npy":
            if not isinstance(data, str):
                raise ValueError("'npy' array payload needs base64 string 'data'")
            try:
                raw = base64.b64decode(data, validate=True)
                array = npy_bytes_to_array(raw)
            except Exception as exc:
                raise ValueError(f"undecodable npy array payload: {exc}") from exc
            if array.dtype != np.float64:
                array = np.asarray(array, dtype=np.float64)
            return array, None
        if encoding == "shm":
            if not shm_transport.shm_available():
                raise ValueError(
                    "shm operand transport is unavailable on this host; "
                    "re-send as 'npy'"
                )
            view, segment = shm_transport.open_segment(payload)
            if view.dtype != np.float64:
                array = np.asarray(view, dtype=np.float64)
                segment.close()
                return array, None
            return view, segment.close
        raise ValueError(f"unknown array encoding {encoding!r}")
    raise ValueError(
        "each array must be a nested JSON list, an "
        '{"encoding": "npy", "data": "<base64>"} object, or an '
        '{"encoding": "shm", "name": ...} object'
    )


def decode_array(payload: object) -> np.ndarray:
    """Decode one wire array into a privately-owned ndarray.

    The client-side convenience: shm payloads are copied out and the
    mapping detached, so the returned array never aliases a segment the
    peer may unlink.  Server-side execution uses :func:`decode_operand`
    (zero-copy, explicit lifetime) instead.
    """
    array, closer = decode_operand(payload)
    if closer is not None:
        try:
            return np.array(array, dtype=np.float64, copy=True)
        finally:
            del array
            closer()
    return array


def _error(payload_id, message: str, exc: Optional[BaseException] = None) -> dict:
    response = {"id": payload_id, "ok": False, "error": message}
    if exc is not None:
        response["error_type"] = type(exc).__name__
    return response


def _parse_single_chain(source: str):
    """A Fig. 2 program's single chain (the serving unit of compilation)."""
    from repro.errors import ParseError
    from repro.ir.parser import parse_program

    program = parse_program(source)
    terms = program.expression.terms
    if len(terms) > 1 or terms[0].coefficient != 1.0:
        raise ParseError(
            "the serve protocol compiles one chain per request; "
            "split multi-term expressions into one request per term"
        )
    return program.chain


def _handle_compile(service: CompileService, payload: dict) -> dict:
    source = payload.get("source")
    if not isinstance(source, str) or not source.strip():
        raise ValueError("'compile' needs a non-empty string 'source'")
    options = payload.get("options") or {}
    if not isinstance(options, dict):
        raise ValueError("'options' must be an object")
    if "size_range" in options and options["size_range"] is not None:
        options["size_range"] = tuple(options["size_range"])
    chain = _parse_single_chain(source)
    start = time.perf_counter()
    future = service.submit(chain, **options)
    generated = future.result()
    elapsed_ms = 1e3 * (time.perf_counter() - start)
    response = {
        "ok": True,
        "handle": getattr(future, "handle", None),
        "chain": str(generated.chain),
        "variants": [variant.name for variant in generated.variants],
        "num_variants": len(generated.variants),
        "elapsed_ms": round(elapsed_ms, 3),
    }
    if payload.get("artifact"):
        # Ship the full versioned CompiledProgram so the client can run
        # dispatch/execute offline (repro.api.load_program on the saved
        # object, no further server round-trips).
        response["artifact"] = json.loads(generated.to_program().dumps())
    return response


def _resolve_handle(service: CompileService, payload: dict, op: str) -> str:
    """The request's handle, compiling ``source`` first when supplied."""
    handle = payload.get("handle")
    if handle is not None:
        return handle
    source = payload.get("source")
    if not isinstance(source, str) or not source.strip():
        raise ValueError(f"{op!r} needs a 'handle' or a 'source'")
    chain = _parse_single_chain(source)
    future = service.submit(chain)
    future.result()
    return getattr(future, "handle", None)


def _handle_dispatch(service: CompileService, payload: dict) -> dict:
    sizes = payload.get("sizes")
    if not isinstance(sizes, (list, tuple)) or not sizes:
        raise ValueError("'dispatch' needs a non-empty 'sizes' array")
    handle = _resolve_handle(service, payload, "dispatch")
    variant, cost = service.dispatch(handle, [int(s) for s in sizes])
    return {
        "ok": True,
        "handle": handle,
        "variant": variant.name,
        "cost": float(cost),
    }


def _result_encoding(payload: dict) -> str:
    encoding = payload.get("result_encoding")
    if encoding is not None:
        return encoding
    # Mirror the first request array's encoding: bare lists and
    # {"encoding": "list"} objects both answer in lists.
    first = payload["arrays"][0]
    if isinstance(first, list):
        return "list"
    if isinstance(first, dict):
        return first.get("encoding", "npy")
    return "npy"


def _handle_execute(service: CompileService, payload: dict) -> dict:
    arrays_payload = payload.get("arrays")
    if not isinstance(arrays_payload, list) or not arrays_payload:
        raise ValueError("'execute' needs a non-empty 'arrays' list")
    handle = _resolve_handle(service, payload, "execute")
    if service.lookup(handle) is None:
        # Reject unknown/evicted handles before paying the payload decode
        # (base64 .npy operands can be large).
        raise KeyError(f"unknown compilation handle {handle!r}")
    arrays: list[np.ndarray] = []
    closers: list[Callable[[], None]] = []
    try:
        for entry in arrays_payload:
            array, closer = decode_operand(entry)
            arrays.append(array)
            if closer is not None:
                closers.append(closer)
        start = time.perf_counter()
        # One live runtime per handle: the registry's dispatcher memoizes
        # the (sizes -> variant, plan) decision, so repeated same-size
        # requests skip the cost sweep and replay a pre-compiled plan —
        # with its intermediate buffers checked out of the plan's arena
        # pool rather than re-allocated (see CompileService.execute).
        sizes, variant, cost, result = service.execute(handle, arrays)
        elapsed_ms = 1e3 * (time.perf_counter() - start)
    finally:
        del arrays
        for closer in closers:
            closer()
    return {
        "ok": True,
        "handle": handle,
        "sizes": [int(s) for s in sizes],
        "variant": variant.name,
        "cost": float(cost),
        "result": encode_array(result, _result_encoding(payload)),
        "elapsed_ms": round(elapsed_ms, 3),
    }


def _handle_release(payload: dict) -> dict:
    name = payload.get("name")
    if not isinstance(name, str) or not name:
        raise ValueError("'release' needs a string 'name'")
    reaper = shm_transport.default_reaper()
    released = reaper.release(name)
    reaper.reap()
    return {"ok": True, "released": released}


def handle_request(service: CompileService, payload: dict) -> dict:
    """Answer one decoded request object (never raises)."""
    payload_id = payload.get("id") if isinstance(payload, dict) else None
    if not isinstance(payload, dict):
        return _error(None, "request must be a JSON object")
    op = payload.get("op")
    try:
        if op == "compile":
            response = _handle_compile(service, payload)
        elif op == "dispatch":
            response = _handle_dispatch(service, payload)
        elif op == "execute":
            response = _handle_execute(service, payload)
        elif op == "release":
            response = _handle_release(payload)
        elif op == "stats":
            response = {
                "ok": True,
                "protocol_version": PROTOCOL_VERSION,
                "transports": transports(),
                **service.stats(),
            }
        elif op == "metrics":
            from repro.obs import render_prometheus

            response = {"ok": True, "text": render_prometheus()}
        elif op == "warm":
            response = {"ok": True, "warmed": service.session.warm()}
        elif op == "ping":
            response = {"ok": True, "pong": True, "transports": transports()}
        else:
            return _error(
                payload_id,
                f"unknown op {op!r}; expected "
                "compile|dispatch|execute|release|stats|metrics|warm|ping",
            )
    except KeyError as exc:
        return _error(payload_id, str(exc.args[0]) if exc.args else str(exc), exc)
    except Exception as exc:
        return _error(payload_id, str(exc), exc)
    response["id"] = payload_id
    return response


def handle_line(service: CompileService, line: str) -> Optional[str]:
    """One protocol round: request line in, response line out.

    Returns ``None`` for blank lines (keep-alive friendly); malformed JSON
    is answered with an in-band error.
    """
    line = line.strip()
    if not line:
        return None
    try:
        payload = json.loads(line)
    except ValueError as exc:
        return json.dumps(_error(None, f"malformed JSON request: {exc}", exc))
    return json.dumps(handle_request(service, payload))


def serve_stream(
    service: CompileService,
    infile: IO[str],
    outfile: IO[str],
    *,
    max_requests: Optional[int] = None,
) -> int:
    """Serve JSON-lines over file objects until EOF; returns requests served.

    Responses are flushed per line so a piped client can converse
    interactively.  ``max_requests`` stops after that many non-blank lines
    (used by tests and batch drivers).
    """
    served = 0
    connection_opened("stdio")
    try:
        for line in infile:
            record_wire("stdio", "in", len(line))
            response = handle_line(service, line)
            if response is None:
                continue
            record_wire("stdio", "out", len(response) + 1)
            outfile.write(response + "\n")
            outfile.flush()
            served += 1
            if max_requests is not None and served >= max_requests:
                break
    finally:
        connection_closed("stdio")
    return served


class _JsonLineHandler(socketserver.StreamRequestHandler):
    def handle(self) -> None:  # pragma: no cover - exercised via TCP tests
        server: CompileServer = self.server  # type: ignore[assignment]
        service = server.compile_service
        limit = server.max_line_bytes
        connection_opened("tcp")
        try:
            while True:
                raw = self.rfile.readline(limit + 1)
                if not raw:
                    return
                record_wire("tcp", "in", len(raw))
                if len(raw) > limit:
                    # One oversize line poisons the rest of the stream (we
                    # cannot tell where the next request starts), so answer
                    # in-band and close.  Drain the rest of the offending
                    # line first (bounded): closing with unread bytes in
                    # the receive queue would RST the connection before
                    # the client reads the error.
                    self._reply(
                        json.dumps(
                            _error(
                                None,
                                f"request line exceeds {limit} bytes",
                            )
                        )
                    )
                    try:
                        self.connection.settimeout(5.0)
                        for _ in range(64):
                            if not raw or raw.endswith(b"\n"):
                                break
                            raw = self.rfile.readline(limit + 1)
                    except OSError:
                        pass
                    return
                response = handle_line(service, raw.decode("utf-8", "replace"))
                if response is None:
                    continue
                if not self._reply(response):
                    return
        finally:
            connection_closed("tcp")

    def _reply(self, response: str) -> bool:
        try:
            encoded = response.encode() + b"\n"
            self.wfile.write(encoded)
            self.wfile.flush()
            record_wire("tcp", "out", len(encoded))
            return True
        except (BrokenPipeError, ConnectionResetError, OSError):
            return False


class CompileServer(socketserver.ThreadingTCPServer):
    """Threading TCP server speaking the JSON-lines protocol.

    One handler thread per connection; every connection shares the single
    :class:`CompileService` (hence its queue bound, coalescing map, cache,
    and metrics).  Connection threads and sockets are tracked so
    :meth:`close` can shut the server down *deterministically*: the
    listener stops, every live connection socket is shut down (clients
    blocked on a read get a clean EOF, not a reset), and the handler
    threads are joined with a timeout — no daemon threads leak past
    shutdown.
    """

    allow_reuse_address = True
    daemon_threads = True  # last-resort: interpreter exit never hangs
    # The socketserver default backlog of 5 drops SYN-ACK completions
    # under a burst of simultaneous connects (the kernel RSTs the
    # half-open connections once its retries run out); a serving data
    # plane must absorb a 64-client stampede without resets.
    request_queue_size = 128

    def __init__(
        self,
        service: CompileService,
        host: str = "127.0.0.1",
        port: int = 0,
        *,
        max_line_bytes: int = DEFAULT_MAX_LINE_BYTES,
    ):
        super().__init__((host, port), _JsonLineHandler)
        self.compile_service = service
        self.max_line_bytes = max_line_bytes
        self._conn_lock = threading.Lock()
        self._conn_threads: dict[threading.Thread, socket.socket] = {}

    @property
    def address(self) -> tuple[str, int]:
        return self.server_address[0], self.server_address[1]

    # -- tracked connection threads ------------------------------------------

    def process_request(self, request, client_address) -> None:
        thread = threading.Thread(
            target=self._handle_tracked,
            args=(request, client_address),
            daemon=True,
            name=f"repro-serve-conn-{client_address[1]}",
        )
        with self._conn_lock:
            self._conn_threads[thread] = request
        thread.start()

    def _handle_tracked(self, request, client_address) -> None:
        try:
            self.finish_request(request, client_address)
        except Exception:  # pragma: no cover - handler errors are per-conn
            self.handle_error(request, client_address)
        finally:
            self.shutdown_request(request)
            with self._conn_lock:
                self._conn_threads.pop(threading.current_thread(), None)

    def connection_count(self) -> int:
        with self._conn_lock:
            return len(self._conn_threads)

    def close(self, timeout: float = 5.0) -> None:
        """Deterministic shutdown: listener, live connections, threads.

        Safe to call from any thread (including while ``serve_forever``
        runs elsewhere) and idempotent.  Clients mid-request observe a
        clean EOF: each live socket is ``shutdown(SHUT_RDWR)`` — flushing
        a FIN — before the handler thread is joined.
        """
        try:
            self.shutdown()  # stops serve_forever, no-op if never started
        except Exception:  # pragma: no cover - platform quirks
            pass
        self.server_close()
        with self._conn_lock:
            live = dict(self._conn_threads)
        for conn in live.values():
            try:
                conn.shutdown(socket.SHUT_RDWR)
            except OSError:
                pass
        deadline = time.monotonic() + timeout
        for thread in live:
            thread.join(max(0.0, deadline - time.monotonic()))


def make_tcp_server(
    service: CompileService,
    host: str = "127.0.0.1",
    port: int = 0,
    *,
    max_line_bytes: int = DEFAULT_MAX_LINE_BYTES,
) -> CompileServer:
    """Bind a :class:`CompileServer` (``port=0`` picks a free port)."""
    return CompileServer(service, host, port, max_line_bytes=max_line_bytes)

"""Asyncio front end: one event loop, thousands of connections.

The threaded :class:`~repro.serve.frontend.CompileServer` spends one OS
thread per connection — fine for a handful of clients, but at 64+ mostly
idle connections the per-thread stacks and GIL churn dominate.  This
front end multiplexes every connection onto **one** event loop:

* the same JSON-lines protocol (:func:`~repro.serve.frontend.handle_line`
  answers each request, so the two servers cannot drift), with
  per-connection buffers bounded by ``max_line_bytes`` — an oversize line
  is answered in-band and the connection closed, exactly like the
  threaded server;
* a minimal HTTP/1.1 mapping on a second port: ``POST`` a JSON request
  body (the same schema as one protocol line) to any path and get the
  JSON response back, keep-alive honoured — enough for ``curl`` and
  stdlib-http clients without an HTTP framework;
* backpressure at both ends: slow readers stall their own connection via
  ``writer.drain()`` (bytes queue per-connection, not per-process), and
  expensive requests pass through a bounded semaphore + worker pool
  before reaching the :class:`~repro.serve.service.CompileService` queue,
  so a compile storm saturates the service's own admission control
  instead of spawning unbounded threads.

Cheap requests (``ping``, ``stats``, small memoized ``execute`` lines —
anything but ``compile`` under :attr:`AsyncCompileServer.inline_bytes`)
are answered *inline* on the event loop: for the serving hot path — warm
handles, small operands — that removes two thread hops per request, which
is where the async server's throughput edge over thread-per-connection
comes from.  Big payloads and compiles are offloaded so the loop never
blocks on them.

The event loop runs in a dedicated thread, so the synchronous CLI (and
tests) drive the server with plain :meth:`AsyncCompileServer.start` /
:meth:`~AsyncCompileServer.close` calls; :meth:`close` is deterministic —
servers closed, every connection task cancelled and awaited, worker pool
shut down, loop thread joined.
"""

from __future__ import annotations

import asyncio
import contextlib
import json
import threading
from concurrent.futures import ThreadPoolExecutor
from typing import Optional

from repro.serve.frontend import (
    DEFAULT_MAX_LINE_BYTES,
    _error,
    handle_request,
)
from repro.serve.metrics import connection_closed, connection_opened, record_wire
from repro.serve.service import CompileService

__all__ = ["AsyncCompileServer", "make_async_server"]

#: Requests at most this many wire bytes (and not ``compile``) are
#: answered inline on the event loop; larger ones go to the worker pool.
DEFAULT_INLINE_BYTES = 64 * 1024

#: Bound on requests concurrently offloaded to the worker pool (the
#: semaphore that turns a compile storm into queueing, not thread growth).
DEFAULT_MAX_INFLIGHT = 32


def _shm_operands(payload: dict) -> bool:
    """Whether an execute request moves operands through shared memory
    (small on the wire, arbitrarily large in the segments)."""
    arrays = payload.get("arrays")
    if isinstance(arrays, list) and any(
        isinstance(a, dict) and a.get("encoding") == "shm" for a in arrays
    ):
        return True
    return payload.get("result_encoding") == "shm"


class AsyncCompileServer:
    """JSON-lines (+ optional HTTP) server on one background event loop.

    ``port=0`` / ``http_port=0`` bind ephemeral ports (read
    :attr:`address` / :attr:`http_address` after :meth:`start`);
    ``http_port=None`` disables the HTTP listener.  One instance serves
    one :class:`CompileService`; start/close are idempotent and safe from
    any thread.
    """

    def __init__(
        self,
        service: CompileService,
        host: str = "127.0.0.1",
        port: int = 0,
        *,
        http_port: Optional[int] = None,
        max_line_bytes: int = DEFAULT_MAX_LINE_BYTES,
        inline_bytes: int = DEFAULT_INLINE_BYTES,
        max_inflight: int = DEFAULT_MAX_INFLIGHT,
    ):
        self.compile_service = service
        self.host = host
        self._port = port
        self._http_port = http_port
        self.max_line_bytes = max_line_bytes
        self.inline_bytes = inline_bytes
        self.max_inflight = max_inflight
        self._loop: Optional[asyncio.AbstractEventLoop] = None
        self._thread: Optional[threading.Thread] = None
        self._pool: Optional[ThreadPoolExecutor] = None
        self._server: Optional[asyncio.base_events.Server] = None
        self._http_server: Optional[asyncio.base_events.Server] = None
        self._semaphore: Optional[asyncio.Semaphore] = None
        self._conn_tasks: set[asyncio.Task] = set()
        self._started = False
        self._closed = False
        self.address: Optional[tuple[str, int]] = None
        self.http_address: Optional[tuple[str, int]] = None

    # -- lifecycle -----------------------------------------------------------

    def start(self) -> "AsyncCompileServer":
        if self._started:
            return self
        self._started = True
        self._loop = asyncio.new_event_loop()
        self._pool = ThreadPoolExecutor(
            max_workers=max(4, min(self.max_inflight, 16)),
            thread_name_prefix="repro-aserve",
        )
        self._thread = threading.Thread(
            target=self._run_loop, name="repro-aserve-loop", daemon=True
        )
        self._thread.start()
        try:
            asyncio.run_coroutine_threadsafe(
                self._open_servers(), self._loop
            ).result(timeout=10.0)
        except BaseException:
            self.close()
            raise
        return self

    def _run_loop(self) -> None:
        asyncio.set_event_loop(self._loop)
        self._loop.run_forever()

    async def _open_servers(self) -> None:
        self._semaphore = asyncio.Semaphore(self.max_inflight)
        # limit bounds the reader's internal buffer: readline() past it
        # raises instead of buffering an unbounded line.
        self._server = await asyncio.start_server(
            self._serve_jsonl,
            self.host,
            self._port,
            limit=self.max_line_bytes + 2,
            backlog=128,
        )
        sock = self._server.sockets[0].getsockname()
        self.address = (sock[0], sock[1])
        if self._http_port is not None:
            self._http_server = await asyncio.start_server(
                self._serve_http,
                self.host,
                self._http_port,
                limit=self.max_line_bytes + 2,
                backlog=128,
            )
            sock = self._http_server.sockets[0].getsockname()
            self.http_address = (sock[0], sock[1])

    def close(self, timeout: float = 5.0) -> None:
        """Deterministic shutdown: listeners, connections, pool, loop."""
        if self._closed or self._loop is None:
            return
        self._closed = True
        with contextlib.suppress(Exception):
            asyncio.run_coroutine_threadsafe(
                self._shutdown(), self._loop
            ).result(timeout=timeout)
        self._loop.call_soon_threadsafe(self._loop.stop)
        if self._thread is not None:
            self._thread.join(timeout=timeout)
        with contextlib.suppress(Exception):
            self._loop.close()
        if self._pool is not None:
            self._pool.shutdown(wait=False)

    async def _shutdown(self) -> None:
        for server in (self._server, self._http_server):
            if server is not None:
                server.close()
                with contextlib.suppress(Exception):
                    await server.wait_closed()
        tasks = list(self._conn_tasks)
        for task in tasks:
            task.cancel()
        if tasks:
            await asyncio.gather(*tasks, return_exceptions=True)

    def __enter__(self) -> "AsyncCompileServer":
        return self.start()

    def __exit__(self, *exc) -> None:
        self.close()

    # -- request dispatch ----------------------------------------------------

    async def _respond(self, raw: bytes) -> Optional[str]:
        """Answer one decoded request line (inline or offloaded)."""
        stripped = raw.strip()
        if not stripped:
            return None
        try:
            payload = json.loads(stripped)
        except ValueError as exc:
            return json.dumps(_error(None, f"malformed JSON request: {exc}", exc))
        if not isinstance(payload, dict):
            return json.dumps(handle_request(self.compile_service, payload))
        if (
            payload.get("op") != "compile"
            and len(raw) <= self.inline_bytes
            and not _shm_operands(payload)
        ):
            # Cheap path: answered on the loop, no thread hop.  Every op
            # but compile is sub-millisecond at this payload size (warm
            # execute included — the kernels on small operands cost less
            # than the executor round-trip would).  shm executes are
            # excluded: their wire line is tiny but the mapped operands
            # are not, and the kernels would block the loop.
            return json.dumps(handle_request(self.compile_service, payload))
        async with self._semaphore:
            loop = asyncio.get_running_loop()
            response = await loop.run_in_executor(
                self._pool, handle_request, self.compile_service, payload
            )
        return json.dumps(response)

    # -- JSON-lines listener -------------------------------------------------

    async def _serve_jsonl(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        task = asyncio.current_task()
        self._conn_tasks.add(task)
        connection_opened("async")
        try:
            while True:
                try:
                    raw = await reader.readline()
                except (asyncio.LimitOverrunError, ValueError):
                    # Oversize line: the buffer holds a partial request we
                    # can never resync from — answer in-band and close,
                    # mirroring the threaded server.
                    await self._write_line(
                        writer,
                        json.dumps(
                            _error(
                                None,
                                f"request line exceeds "
                                f"{self.max_line_bytes} bytes",
                            )
                        ),
                    )
                    return
                if not raw:
                    return
                record_wire("async", "in", len(raw))
                response = await self._respond(raw)
                if response is None:
                    continue
                if not await self._write_line(writer, response):
                    return
        except asyncio.CancelledError:
            pass
        finally:
            self._conn_tasks.discard(task)
            connection_closed("async")
            await _close_writer(writer)

    async def _write_line(
        self, writer: asyncio.StreamWriter, response: str
    ) -> bool:
        data = response.encode() + b"\n"
        try:
            writer.write(data)
            await writer.drain()  # per-connection backpressure
        except (ConnectionError, OSError):
            return False
        record_wire("async", "out", len(data))
        return True

    # -- HTTP/1.1 listener ---------------------------------------------------

    async def _serve_http(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        task = asyncio.current_task()
        self._conn_tasks.add(task)
        connection_opened("http")
        try:
            while True:
                keep_alive = await self._serve_one_http(reader, writer)
                if not keep_alive:
                    return
        except asyncio.CancelledError:
            pass
        except (ConnectionError, OSError, asyncio.IncompleteReadError):
            pass
        finally:
            self._conn_tasks.discard(task)
            connection_closed("http")
            await _close_writer(writer)

    async def _serve_one_http(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> bool:
        """One request/response round; returns whether to keep the
        connection open."""
        try:
            request_line = await reader.readline()
        except (asyncio.LimitOverrunError, ValueError):
            await self._http_reply(
                writer, 431, {"ok": False, "error": "request line too long"}
            )
            return False
        if not request_line:
            return False
        wire_in = len(request_line)
        parts = request_line.decode("latin-1").split()
        if len(parts) != 3:
            await self._http_reply(
                writer, 400, {"ok": False, "error": "malformed request line"}
            )
            return False
        method, _target, version = parts
        headers: dict[str, str] = {}
        while True:
            try:
                header = await reader.readline()
            except (asyncio.LimitOverrunError, ValueError):
                await self._http_reply(
                    writer, 431, {"ok": False, "error": "header line too long"}
                )
                return False
            wire_in += len(header)
            if header in (b"\r\n", b"\n", b""):
                break
            name, _, value = header.decode("latin-1").partition(":")
            headers[name.strip().lower()] = value.strip()
        keep_alive = version == "HTTP/1.1" and (
            headers.get("connection", "").lower() != "close"
        )
        if method != "POST":
            await self._http_reply(
                writer,
                405,
                {"ok": False, "error": "POST a JSON request body"},
                keep_alive=keep_alive,
            )
            return keep_alive
        try:
            length = int(headers.get("content-length", "0"))
        except ValueError:
            length = -1
        if length < 0 or length > self.max_line_bytes:
            await self._http_reply(
                writer,
                413 if length > 0 else 400,
                {"ok": False, "error": "bad or oversize content-length"},
            )
            return False
        body = await reader.readexactly(length) if length else b""
        wire_in += len(body)
        record_wire("http", "in", wire_in)
        response = await self._respond(body if body.strip() else b"{}")
        await self._http_reply_raw(
            writer, 200, (response or "{}").encode(), keep_alive=keep_alive
        )
        return keep_alive

    async def _http_reply(
        self,
        writer: asyncio.StreamWriter,
        status: int,
        payload: dict,
        keep_alive: bool = False,
    ) -> None:
        await self._http_reply_raw(
            writer, status, json.dumps(payload).encode(), keep_alive=keep_alive
        )

    async def _http_reply_raw(
        self,
        writer: asyncio.StreamWriter,
        status: int,
        body: bytes,
        keep_alive: bool = False,
    ) -> None:
        reason = {
            200: "OK",
            400: "Bad Request",
            405: "Method Not Allowed",
            413: "Payload Too Large",
            431: "Request Header Fields Too Large",
        }.get(status, "Error")
        head = (
            f"HTTP/1.1 {status} {reason}\r\n"
            "Content-Type: application/json\r\n"
            f"Content-Length: {len(body)}\r\n"
            f"Connection: {'keep-alive' if keep_alive else 'close'}\r\n"
            "\r\n"
        ).encode("latin-1")
        try:
            writer.write(head + body)
            await writer.drain()
        except (ConnectionError, OSError):
            return
        record_wire("http", "out", len(head) + len(body))


async def _close_writer(writer: asyncio.StreamWriter) -> None:
    with contextlib.suppress(Exception):
        writer.close()
        await writer.wait_closed()


def make_async_server(
    service: CompileService,
    host: str = "127.0.0.1",
    port: int = 0,
    *,
    http_port: Optional[int] = None,
    max_line_bytes: int = DEFAULT_MAX_LINE_BYTES,
) -> AsyncCompileServer:
    """Build (without starting) an :class:`AsyncCompileServer` —
    the asyncio sibling of :func:`~repro.serve.frontend.make_tcp_server`."""
    return AsyncCompileServer(
        service, host, port, http_port=http_port, max_line_bytes=max_line_bytes
    )

"""JSON (de)serialization of chains and compiled variants.

Compilation is deterministic but not free (Catalan-many variants are
enumerated and scored on a training set).  Serializing the generated code
lets an application compile once and ship/load the result — the moral
equivalent of distributing the generated C++ object files.

The format stores the chain shape, and per variant the full resolved step
sequence (kernel, side, cost case, operand states, triplets, call dims) and
fix-ups, so loading does not recompute anything.
"""

from __future__ import annotations

import json
from typing import Any

from repro.errors import ReproError
from repro.ir.chain import Chain
from repro.ir.features import Property, Structure
from repro.ir.matrix import Matrix
from repro.ir.operand import Operand, UnaryOp
from repro.kernels.spec import get_kernel
from repro.compiler.parenthesization import ParenTree
from repro.compiler.states import OperandState
from repro.compiler.variant import FixupStep, Step, Variant

FORMAT_VERSION = 1


class SerializationError(ReproError):
    """The payload is not a valid serialized compilation."""


# -- chain -----------------------------------------------------------------

def chain_to_dict(chain: Chain) -> dict[str, Any]:
    return {
        "operands": [
            {
                "name": op.matrix.name,
                "structure": op.matrix.structure.name,
                "property": op.matrix.prop.name,
                "op": op.op.name,
            }
            for op in chain
        ]
    }


def chain_from_dict(payload: dict[str, Any]) -> Chain:
    try:
        operands = tuple(
            Operand(
                Matrix(
                    entry["name"],
                    Structure[entry["structure"]],
                    Property[entry["property"]],
                ),
                UnaryOp[entry["op"]],
            )
            for entry in payload["operands"]
        )
    except (KeyError, TypeError) as exc:
        raise SerializationError(f"malformed chain payload: {exc}") from exc
    return Chain(operands)


# -- operand states -----------------------------------------------------------

def _state_to_dict(state: OperandState) -> dict[str, Any]:
    return {
        "structure": state.structure.name,
        "property": state.prop.name,
        "inverted": state.inverted,
        "transposed": state.transposed,
        "rows": state.rows,
        "cols": state.cols,
        "square": state.square,
        "source": list(state.source),
    }


def _state_from_dict(payload: dict[str, Any]) -> OperandState:
    return OperandState(
        structure=Structure[payload["structure"]],
        prop=Property[payload["property"]],
        inverted=bool(payload["inverted"]),
        transposed=bool(payload["transposed"]),
        rows=int(payload["rows"]),
        cols=int(payload["cols"]),
        square=bool(payload["square"]),
        source=(payload["source"][0], int(payload["source"][1])),
    )


# -- variants --------------------------------------------------------------

def variant_to_dict(variant: Variant) -> dict[str, Any]:
    return {
        "name": variant.name,
        "steps": [
            {
                "index": step.index,
                "kernel": step.kernel.name,
                "side": step.side,
                "cheap": step.cheap,
                "left_ref": list(step.left_ref),
                "right_ref": list(step.right_ref),
                "left_state": _state_to_dict(step.left_state),
                "right_state": _state_to_dict(step.right_state),
                "triplet": list(step.triplet),
                "call_dims": list(step.call_dims),
                "result_state": _state_to_dict(step.result_state),
            }
            for step in variant.steps
        ],
        "fixups": [
            {"kernel": fix.kernel.name, "dim": fix.dim}
            for fix in variant.fixups
        ],
        "final_state": _state_to_dict(variant.final_state),
    }


def variant_from_dict(payload: dict[str, Any], chain: Chain) -> Variant:
    try:
        steps = []
        for entry in payload["steps"]:
            kernel = get_kernel(entry["kernel"])
            steps.append(
                Step(
                    index=int(entry["index"]),
                    kernel=kernel,
                    side=entry["side"],
                    cheap=bool(entry["cheap"]),
                    left_ref=(entry["left_ref"][0], int(entry["left_ref"][1])),
                    right_ref=(entry["right_ref"][0], int(entry["right_ref"][1])),
                    left_state=_state_from_dict(entry["left_state"]),
                    right_state=_state_from_dict(entry["right_state"]),
                    triplet=tuple(entry["triplet"]),
                    call_dims=tuple(entry["call_dims"]),
                    cost=kernel.cost(side=entry["side"], cheap=bool(entry["cheap"])),
                    result_state=_state_from_dict(entry["result_state"]),
                )
            )
        fixups = []
        for entry in payload["fixups"]:
            kernel = get_kernel(entry["kernel"])
            fixups.append(
                FixupStep(kernel=kernel, dim=int(entry["dim"]), cost=kernel.cost())
            )
        final_state = _state_from_dict(payload["final_state"])
    except (KeyError, TypeError) as exc:
        raise SerializationError(f"malformed variant payload: {exc}") from exc
    return Variant(
        chain=chain,
        tree=None,  # the tree is not needed after compilation
        steps=tuple(steps),
        fixups=tuple(fixups),
        final_state=final_state,
        name=payload.get("name", ""),
    )


# -- top level ----------------------------------------------------------------

def dumps(chain: Chain, variants: list[Variant], indent: int | None = None) -> str:
    """Serialize a compiled chain (shape + variants) to a JSON string."""
    return json.dumps(
        {
            "format_version": FORMAT_VERSION,
            "chain": chain_to_dict(chain),
            "variants": [variant_to_dict(v) for v in variants],
        },
        indent=indent,
    )


def loads(payload: str) -> tuple[Chain, list[Variant]]:
    """Load a compiled chain; returns (chain, variants).

    Raises :class:`SerializationError` on malformed or incompatible input.
    """
    try:
        data = json.loads(payload)
    except json.JSONDecodeError as exc:
        raise SerializationError(f"invalid JSON: {exc}") from exc
    if not isinstance(data, dict):
        raise SerializationError("top-level payload must be an object")
    version = data.get("format_version")
    if version != FORMAT_VERSION:
        raise SerializationError(
            f"unsupported format version {version!r} (expected {FORMAT_VERSION})"
        )
    chain = chain_from_dict(data["chain"])
    variants = [variant_from_dict(entry, chain) for entry in data["variants"]]
    return chain, variants

"""Code emission: the generated-code artifacts of Fig. 1.

The paper's code generator outputs C++ functions (one per variant, each
paired with a cost function) plus a dispatch function.  This subpackage
emits exactly that as C++ source text (:mod:`repro.codegen.cpp_emitter`),
while the executable in-process equivalent is provided by
:class:`repro.compiler.dispatch.Dispatcher`.
"""

from repro.codegen.cpp_emitter import emit_cpp, emit_kernels_header
from repro.codegen.python_emitter import emit_python
from repro.codegen import serialize

__all__ = ["emit_cpp", "emit_kernels_header", "emit_python", "serialize"]

"""repro.obs — the unified observability layer.

One import surface for the three pillars:

* :mod:`repro.obs.registry` — the process-wide metrics registry
  (counters, gauges, bounded-window histograms) that compile, serve, and
  runtime all report into; :func:`get_registry` is the entry point.
* :mod:`repro.obs.trace` — structured spans with trace/span IDs, nested
  through :mod:`contextvars` and propagated across the procpool process
  boundary; near-zero cost while disabled.
* :mod:`repro.obs.export` — JSON-lines file export for spans/metrics and
  a Prometheus-text renderer + stdlib HTTP scrape endpoint.

See the README "Observability" section for the end-to-end picture.
"""

from .registry import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    get_registry,
    metric_key,
    percentile,
)
from .trace import (
    Span,
    annotate,
    capture,
    continue_trace,
    current_context,
    current_span,
    ingest,
    span,
    traced,
)
from .export import (
    JsonLinesExporter,
    read_trace_file,
    render_prometheus,
    serve_metrics_http,
    tracing_to,
)
from . import trace

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "JsonLinesExporter",
    "MetricsRegistry",
    "Span",
    "annotate",
    "capture",
    "continue_trace",
    "current_context",
    "current_span",
    "get_registry",
    "ingest",
    "metric_key",
    "percentile",
    "read_trace_file",
    "render_prometheus",
    "serve_metrics_http",
    "span",
    "trace",
    "traced",
    "tracing_to",
]

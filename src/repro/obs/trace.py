"""Structured tracing: spans with trace/span IDs and a context-local stack.

A *span* is a named, timed region of work with a trace identity: every
span carries a ``trace_id`` shared by all work done on behalf of the same
top-level request, a unique ``span_id``, and its ``parent_id``.  Spans
nest through :mod:`contextvars` — ``span("serve.request")`` inside
``span("frontend")`` becomes a child automatically — and survive process
hops: the serve layer sends :func:`current_context` (two IDs) across the
procpool JSON boundary and the worker re-roots under it with
:func:`continue_trace`, so a worker compile appears as a child span in
the parent's trace.

Tracing is **off by default** and must cost nearly nothing when off:
:func:`span` checks the module-level ``_enabled`` flag before allocating
anything and returns a shared no-op context manager, so a disabled trace
point is one global read and one ``is not True`` branch.  Enable with
:func:`enable` (or ``repro ... --trace out.jsonl``).

Finished spans go to a bounded in-memory buffer (for :func:`drain`) and
to any registered sinks (:func:`add_sink`, used by the JSON-lines
exporter).  :func:`capture` collects spans of a region into a list —
procpool workers use it to ship their spans home, where the parent calls
:func:`ingest` to re-emit them into its own buffer and sinks.

Span IDs must be cheap (a traced dispatch mints one per request), so they
are a per-process random prefix plus an atomic counter — unique across
the worker pool without uuid4's ~µs cost.
"""

from __future__ import annotations

import contextvars
import functools
import itertools
import os
import threading
import time
from collections import deque
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Any, Callable, Iterator, Optional

__all__ = [
    "Span",
    "add_sink",
    "annotate",
    "capture",
    "continue_trace",
    "current_context",
    "current_span",
    "disable",
    "drain",
    "enable",
    "enabled",
    "ingest",
    "leaf_span",
    "remove_sink",
    "span",
    "traced",
]

#: Tracing master switch.  Read (not mutated) on every hot-path trace
#: point; flip it only through enable()/disable().
_enabled = False

#: Bounded buffer of finished spans, drained by drain()/the stats paths.
_BUFFER_LIMIT = 4096
_buffer: deque[Span] = deque(maxlen=_BUFFER_LIMIT)
_buffer_lock = threading.Lock()

#: Sinks receive every finished span (exporters, capture lists).
_sinks: list[Callable[["Span"], None]] = []
_sinks_lock = threading.Lock()

_active: contextvars.ContextVar[Optional["Span"]] = contextvars.ContextVar(
    "repro_obs_active_span", default=None
)

# Process-unique ID minting: 8 hex chars of boot entropy + pid-derived
# salt, then an atomic counter.  itertools.count().__next__ is atomic
# under the GIL.
_id_prefix = f"{int.from_bytes(os.urandom(4), 'big') ^ (os.getpid() << 8):08x}"
_id_counter = itertools.count(1)


def _new_id() -> str:
    return f"{_id_prefix}-{next(_id_counter):x}"


@dataclass(slots=True)
class Span:
    """One named, timed region of work within a trace."""

    name: str
    trace_id: str
    span_id: str
    parent_id: Optional[str] = None
    start: float = 0.0
    duration: float = 0.0
    attributes: dict[str, Any] = field(default_factory=dict)
    status: str = "ok"
    # default_factory, not a module-level constant: fork-mode procpool
    # workers inherit this module already imported, so a baked-in pid
    # would stamp the parent's pid on worker spans.
    process: int = field(default_factory=os.getpid)
    _token: Any = field(default=None, repr=False, compare=False)
    _t0: float = field(default=0.0, repr=False, compare=False)

    # -- lifecycle ----------------------------------------------------------

    def __enter__(self) -> "Span":
        self._token = _active.set(self)
        self._t0 = time.perf_counter()
        self.start = time.time()
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        self.duration = time.perf_counter() - self._t0
        if exc_type is not None:
            self.status = "error"
            self.attributes.setdefault("error", f"{exc_type.__name__}: {exc}")
        _active.reset(self._token)
        _emit(self)
        return False

    def annotate(self, **attrs: Any) -> "Span":
        self.attributes.update(attrs)
        return self

    # -- serialization ------------------------------------------------------

    def to_dict(self) -> dict[str, Any]:
        return {
            "name": self.name,
            "trace_id": self.trace_id,
            "span_id": self.span_id,
            "parent_id": self.parent_id,
            "start": self.start,
            "duration": self.duration,
            "attributes": self.attributes,
            "status": self.status,
            "process": self.process,
        }

    @classmethod
    def from_dict(cls, data: dict[str, Any]) -> "Span":
        return cls(
            name=data["name"],
            trace_id=data["trace_id"],
            span_id=data["span_id"],
            parent_id=data.get("parent_id"),
            start=data.get("start", 0.0),
            duration=data.get("duration", 0.0),
            attributes=dict(data.get("attributes", {})),
            status=data.get("status", "ok"),
            process=data.get("process", 0),
        )


class _NullSpan:
    """The shared do-nothing context manager returned when tracing is off.

    annotate() is accepted and dropped so call sites need no enabled
    checks of their own.
    """

    __slots__ = ()

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        return False

    def annotate(self, **attrs: Any) -> "_NullSpan":
        return self


_NULL = _NullSpan()


def _emit(finished: Span) -> None:
    with _buffer_lock:
        _buffer.append(finished)
    if not _sinks:  # unlocked peek: the common no-exporter case pays nothing
        return
    with _sinks_lock:
        sinks = list(_sinks)
    for sink in sinks:
        try:
            sink(finished)
        except Exception:
            pass  # a broken exporter must not break the traced work


# -- public API --------------------------------------------------------------


def enable() -> None:
    global _enabled
    _enabled = True


def disable() -> None:
    global _enabled
    _enabled = False


def enabled() -> bool:
    return _enabled


def span(name: str, **attrs: Any):
    """Open a span as a context manager; a shared no-op when disabled.

    The disabled path allocates nothing: one global read, return the
    module-level null span.
    """
    if not _enabled:
        return _NULL
    parent = _active.get()
    if parent is not None:
        trace_id, parent_id = parent.trace_id, parent.span_id
    else:
        trace_id, parent_id = _new_id(), None
    return Span(
        name=name,
        trace_id=trace_id,
        span_id=_new_id(),
        parent_id=parent_id,
        attributes=attrs,
    )


def traced(name: Optional[str] = None):
    """Decorator form of :func:`span`; span name defaults to the function's
    qualified name."""

    def decorate(fn):
        span_name = name or fn.__qualname__

        @functools.wraps(fn)
        def wrapper(*args, **kwargs):
            if not _enabled:
                return fn(*args, **kwargs)
            with span(span_name):
                return fn(*args, **kwargs)

        return wrapper

    return decorate


def leaf_span(
    name: str,
    start: float,
    duration: float,
    status: str = "ok",
    **attrs: Any,
) -> Optional[Span]:
    """Emit an already-finished span that had no children (hot paths).

    ``span()`` pays its bookkeeping on both sides of the traced work:
    allocation and contextvar publication before, emission after — and on
    a hot path whose work evicts the cache (a BLAS kernel sequence), both
    sides run cold.  A *leaf* span needs none of the up-front half: it
    parents no children, so nothing reads it from the context.  Callers
    time the work themselves (``start`` from ``time.time()``, ``duration``
    in seconds) and this constructs and emits the finished span in one
    post-hoc, cache-coherent cluster.  No-op returning ``None`` when
    tracing is disabled.
    """
    if not _enabled:
        return None
    parent = _active.get()
    if parent is not None:
        trace_id, parent_id = parent.trace_id, parent.span_id
    else:
        trace_id, parent_id = _new_id(), None
    finished = Span(
        name=name,
        trace_id=trace_id,
        span_id=_new_id(),
        parent_id=parent_id,
        start=start,
        duration=duration,
        attributes=attrs,
        status=status,
    )
    _emit(finished)
    return finished


def current_span() -> Optional[Span]:
    """The innermost open span in this context, if any."""
    return _active.get()


def current_context() -> Optional[dict[str, str]]:
    """The active trace identity as a JSON-clean dict, for crossing process
    boundaries; ``None`` when no span is open."""
    active = _active.get()
    if active is None:
        return None
    return {"trace_id": active.trace_id, "span_id": active.span_id}


@contextmanager
def continue_trace(context: Optional[dict[str, str]]) -> Iterator[None]:
    """Adopt a trace identity received from another process.

    Spans opened inside become children of the remote span described by
    ``context`` (``{"trace_id", "span_id"}``).  A None/empty context is a
    no-op, as is tracing being disabled.
    """
    if not _enabled or not context:
        yield
        return
    remote = Span(
        name="<remote-parent>",
        trace_id=context["trace_id"],
        span_id=context["span_id"],
    )
    token = _active.set(remote)
    try:
        yield
    finally:
        _active.reset(token)


def annotate(**attrs: Any) -> None:
    """Attach attributes to the active span; silently ignored when none."""
    active = _active.get()
    if active is not None:
        active.attributes.update(attrs)


def add_sink(sink: Callable[[Span], None]) -> None:
    with _sinks_lock:
        _sinks.append(sink)


def remove_sink(sink: Callable[[Span], None]) -> None:
    with _sinks_lock:
        try:
            _sinks.remove(sink)
        except ValueError:
            pass


@contextmanager
def capture() -> Iterator[list[Span]]:
    """Collect every span finished inside the block into the yielded list."""
    collected: list[Span] = []
    add_sink(collected.append)
    try:
        yield collected
    finally:
        remove_sink(collected.append)


def ingest(spans: list[dict[str, Any]]) -> list[Span]:
    """Re-emit serialized spans (e.g. shipped back from a procpool worker)
    into this process's buffer and sinks; returns the revived spans."""
    revived = [Span.from_dict(data) for data in spans]
    for item in revived:
        _emit(item)
    return revived


def drain() -> list[Span]:
    """Remove and return every buffered finished span."""
    with _buffer_lock:
        spans = list(_buffer)
        _buffer.clear()
    return spans

"""Exporters: JSON-lines span/metrics files and Prometheus text.

Two consumption paths for the registry/trace data:

* **Files** — :class:`JsonLinesExporter` appends one JSON object per
  finished span (it registers itself as a trace sink) and can stamp
  registry snapshots into the same stream; :func:`read_trace_file` reads
  either back.  ``repro compile|run --trace out.jsonl`` is a thin wrapper
  over :func:`tracing_to`.
* **Scrape** — :func:`render_prometheus` turns a registry snapshot into
  Prometheus text exposition format (counters and gauges as-is,
  histograms as summaries with quantile labels plus ``_sum``/``_count``;
  numeric leaves of collector scopes flattened under a ``scope`` label),
  and :func:`serve_metrics_http` mounts it on a stdlib HTTP server for
  ``repro serve --metrics-port``.

No third-party dependencies: the wire formats are plain text and JSON.
"""

from __future__ import annotations

import json
import threading
import time
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from contextlib import contextmanager
from pathlib import Path
from typing import Any, Iterator, Optional, Union

from . import trace
from .registry import MetricsRegistry, get_registry
from .trace import Span

__all__ = [
    "JsonLinesExporter",
    "read_trace_file",
    "render_prometheus",
    "serve_metrics_http",
    "tracing_to",
]


class JsonLinesExporter:
    """Append spans (and optional metrics snapshots) to a JSON-lines file.

    Each line is one object tagged with ``"kind"``: spans are
    ``{"kind": "span", ...Span.to_dict()}``, snapshots are
    ``{"kind": "metrics", "time": ..., "snapshot": {...}}``.  Writes are
    serialized by a lock and flushed per line, so the file is valid after
    a crash mid-run.
    """

    def __init__(self, path: Union[str, Path]):
        self.path = Path(path)
        self.path.parent.mkdir(parents=True, exist_ok=True)
        self._lock = threading.Lock()
        self._fh = self.path.open("a", encoding="utf-8")
        self._closed = False

    def export_span(self, finished: Span) -> None:
        self._write({"kind": "span", **finished.to_dict()})

    def export_metrics(self, registry: Optional[MetricsRegistry] = None) -> None:
        registry = registry if registry is not None else get_registry()
        self._write(
            {"kind": "metrics", "time": time.time(), "snapshot": registry.snapshot()}
        )

    def _write(self, record: dict[str, Any]) -> None:
        line = json.dumps(record, sort_keys=True, default=str)
        with self._lock:
            if self._closed:
                return
            self._fh.write(line + "\n")
            self._fh.flush()

    def install(self) -> "JsonLinesExporter":
        """Register as a trace sink so every finished span is written."""
        trace.add_sink(self.export_span)
        return self

    def close(self) -> None:
        trace.remove_sink(self.export_span)
        with self._lock:
            if not self._closed:
                self._closed = True
                self._fh.close()

    def __enter__(self) -> "JsonLinesExporter":
        return self.install()

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()


def read_trace_file(path: Union[str, Path]) -> list[dict[str, Any]]:
    """Parse a JSON-lines export back into records (blank lines skipped)."""
    records = []
    with Path(path).open("r", encoding="utf-8") as fh:
        for line in fh:
            line = line.strip()
            if line:
                records.append(json.loads(line))
    return records


@contextmanager
def tracing_to(path: Union[str, Path]) -> Iterator[JsonLinesExporter]:
    """Enable tracing and stream spans to ``path`` for the block's duration.

    Restores the previous enabled state on exit and stamps one final
    metrics snapshot into the file, so a ``--trace`` run captures both
    the spans and the end-state counters.
    """
    was_enabled = trace.enabled()
    exporter = JsonLinesExporter(path).install()
    trace.enable()
    try:
        yield exporter
    finally:
        if not was_enabled:
            trace.disable()
        exporter.export_metrics()
        exporter.close()


# -- Prometheus text exposition ---------------------------------------------


def _prom_name(raw: str) -> str:
    """Sanitize to a Prometheus metric name: [a-zA-Z_:][a-zA-Z0-9_:]*."""
    out = []
    for i, ch in enumerate(raw):
        if ch.isalnum() or ch in "_:":
            out.append(ch)
        else:
            out.append("_")
    name = "".join(out)
    if name and name[0].isdigit():
        name = "_" + name
    return name or "_"


def _prom_labels(labels: dict[str, str]) -> str:
    if not labels:
        return ""
    inner = ",".join(
        f'{_prom_name(key)}="{str(value)}"' for key, value in sorted(labels.items())
    )
    return "{" + inner + "}"


def _split_key(key: str) -> tuple[str, dict[str, str]]:
    """Invert ``metric_key``: ``name{k=v,...}`` -> (name, labels)."""
    if not key.endswith("}") or "{" not in key:
        return key, {}
    name, _, rest = key.partition("{")
    labels = {}
    for pair in rest[:-1].split(","):
        if "=" in pair:
            label, _, value = pair.partition("=")
            labels[label] = value
    return name, labels


def _flatten_numeric(prefix: str, value: Any, out: list[tuple[str, float]]) -> None:
    """Collect numeric leaves of a nested dict as (dotted.path, value)."""
    if isinstance(value, bool):
        out.append((prefix, 1.0 if value else 0.0))
    elif isinstance(value, (int, float)):
        out.append((prefix, float(value)))
    elif isinstance(value, dict):
        for key, inner in value.items():
            child = f"{prefix}.{key}" if prefix else str(key)
            _flatten_numeric(child, inner, out)


def render_prometheus(
    snapshot: Optional[dict[str, Any]] = None, prefix: str = "repro"
) -> str:
    """Render a registry snapshot as Prometheus text exposition format.

    Counters and gauges map directly; histograms become summaries
    (quantile-labelled samples plus ``_sum`` and ``_count``).  Collector
    scopes are walked for numeric leaves, exported as gauges named after
    the dotted path with a ``scope`` label — approximate but complete,
    so a scrape sees everything ``stats`` sees.
    """
    if snapshot is None:
        snapshot = get_registry().snapshot()
    lines: list[str] = []
    typed: set[str] = set()

    def emit(name: str, kind: str, labels: dict[str, str], value: float) -> None:
        full = f"{prefix}_{_prom_name(name)}" if prefix else _prom_name(name)
        if full not in typed:
            lines.append(f"# TYPE {full} {kind}")
            typed.add(full)
        lines.append(f"{full}{_prom_labels(labels)} {value}")

    for key, value in snapshot.get("counters", {}).items():
        name, labels = _split_key(key)
        emit(name, "counter", labels, float(value))
    for key, value in snapshot.get("gauges", {}).items():
        name, labels = _split_key(key)
        emit(name, "gauge", labels, float(value))
    for key, hist in snapshot.get("histograms", {}).items():
        name, labels = _split_key(key)
        base = f"{prefix}_{_prom_name(name)}" if prefix else _prom_name(name)
        if base not in typed:
            lines.append(f"# TYPE {base} summary")
            typed.add(base)
        for q_label, q_key in (("0.5", "p50"), ("0.9", "p90"), ("0.99", "p99")):
            q_labels = dict(labels, quantile=q_label)
            lines.append(f"{base}{_prom_labels(q_labels)} {hist.get(q_key, 0.0)}")
        lines.append(f"{base}_sum{_prom_labels(labels)} {hist.get('sum', 0.0)}")
        lines.append(f"{base}_count{_prom_labels(labels)} {hist.get('count', 0)}")
    for scope, data in snapshot.get("scopes", {}).items():
        leaves: list[tuple[str, float]] = []
        _flatten_numeric("", data, leaves)
        for path, value in leaves:
            emit(path, "gauge", {"scope": scope}, value)
    return "\n".join(lines) + "\n"


class _MetricsHandler(BaseHTTPRequestHandler):
    registry: Optional[MetricsRegistry] = None

    def do_GET(self):  # noqa: N802 - http.server API
        if self.path.split("?", 1)[0] not in ("/metrics", "/"):
            self.send_error(404)
            return
        registry = self.registry if self.registry is not None else get_registry()
        body = render_prometheus(registry.snapshot()).encode("utf-8")
        self.send_response(200)
        self.send_header("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
        self.send_header("Content-Length", str(len(body)))
        self.end_headers()
        self.wfile.write(body)

    def log_message(self, *args):  # silence per-scrape stderr noise
        pass


def serve_metrics_http(
    port: int,
    host: str = "127.0.0.1",
    registry: Optional[MetricsRegistry] = None,
) -> ThreadingHTTPServer:
    """Start a daemon-threaded Prometheus scrape endpoint at ``/metrics``.

    Returns the running server (``server.server_address`` has the bound
    port when ``port=0``); call ``server.shutdown()`` to stop it.
    """
    handler = type("_BoundMetricsHandler", (_MetricsHandler,), {"registry": registry})
    server = ThreadingHTTPServer((host, port), handler)
    server.daemon_threads = True
    thread = threading.Thread(
        target=server.serve_forever, name="repro-metrics-http", daemon=True
    )
    thread.start()
    return server

"""The process-wide metrics registry: counters, gauges, histograms.

Before this module, every layer spoke its own telemetry dialect —
``serve/metrics.py`` counters, :attr:`PassContext.timings`,
``Dispatcher.memo_stats()`` — and nothing could answer "what is this
process doing?" in one call.  The registry is that one place:

* :class:`Counter` — a monotonic, thread-safe count (requests, hits).
* :class:`Gauge` — a point-in-time value, either set explicitly or read
  through a probe callable (queue depth, pool size).
* :class:`Histogram` — a bounded sliding window of observations with
  nearest-rank percentiles (p50/p90/p99) plus *cumulative* count/sum/min/
  max, so long-lived processes keep totals while percentiles stay recent.

Metrics are identified by ``name`` plus optional string labels
(``counter("cache.lookups", tier="memory", outcome="hit")``); the same
identity always returns the same object, so call sites never hold
registration state.  :func:`get_registry` returns the process-wide
instance every layer reports into; private registries (e.g. one per
:class:`~repro.serve.metrics.ServiceMetrics`) join the global snapshot as
*collectors* — weakly-referenced snapshot providers grouped under a scope
name, dropped automatically when their owner dies.

The snapshot (:meth:`MetricsRegistry.snapshot`) is plain JSON-clean dicts,
served verbatim by the serve ``stats`` op and rendered to Prometheus text
by :func:`repro.obs.export.render_prometheus`.
"""

from __future__ import annotations

import math
import threading
import weakref
from collections import deque
from typing import Callable, Optional

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "get_registry",
    "metric_key",
    "percentile",
]

#: Default sliding-window size for histograms.
DEFAULT_WINDOW = 1024


def percentile(
    samples: list[float], p: float, default: Optional[float] = 0.0
) -> Optional[float]:
    """Nearest-rank percentile of ``samples`` (``p`` in [0, 100]).

    The rank is the explicit ``ceil(p/100 * n)`` (1-indexed, clamped to
    the first element for ``p = 0``).  The historical implementation used
    ``round()``, whose banker's rounding (``round(2.5) == 2``) shifted the
    index down on half-way boundaries — e.g. the median of five samples
    came back as the *second*-smallest.  An empty sample set returns
    ``default`` — 0.0 keeps the stats endpoints answering before the
    first observation, while callers that must *distinguish* "no data"
    from a measured zero (the calibrated cost model reads medians that
    become rate denominators) pass ``default=None`` and branch on it
    instead of dividing by a fabricated 0.0.
    """
    if not samples:
        return default
    if not 0.0 <= p <= 100.0:
        raise ValueError(f"percentile must be in [0, 100], got {p}")
    ordered = sorted(samples)
    rank = math.ceil(p / 100.0 * len(ordered)) - 1  # p=0 -> -1, clamped
    return ordered[max(0, rank)]


def metric_key(name: str, labels: dict[str, str]) -> str:
    """The registry identity of a metric: ``name{k=v,...}`` (sorted keys)."""
    if not labels:
        return name
    inner = ",".join(f"{key}={labels[key]}" for key in sorted(labels))
    return f"{name}{{{inner}}}"


class Counter:
    """A monotonic, thread-safe counter."""

    kind = "counter"
    __slots__ = ("name", "labels", "_lock", "_value")

    def __init__(self, name: str, labels: Optional[dict[str, str]] = None):
        self.name = name
        self.labels = dict(labels or {})
        self._lock = threading.Lock()
        self._value = 0

    def inc(self, amount: int = 1) -> None:
        with self._lock:
            self._value += amount

    @property
    def value(self) -> int:
        with self._lock:
            return self._value

    def snapshot(self) -> int:
        return self.value

    def __repr__(self) -> str:
        return f"<Counter {metric_key(self.name, self.labels)}={self.value}>"


class Gauge:
    """A point-in-time value: set explicitly, or read through a probe.

    A probe (a zero-argument callable) wins over the last set value; probe
    failures degrade to the last set value rather than raising into a
    stats call.
    """

    kind = "gauge"
    __slots__ = ("name", "labels", "_lock", "_value", "_probe")

    def __init__(self, name: str, labels: Optional[dict[str, str]] = None):
        self.name = name
        self.labels = dict(labels or {})
        self._lock = threading.Lock()
        self._value: float = 0.0
        self._probe: Optional[Callable[[], float]] = None

    def set(self, value: float) -> None:
        with self._lock:
            self._value = value

    def add(self, delta: float) -> None:
        """Adjust the stored value by ``delta`` (counts that go both ways,
        e.g. live connections).  Meaningless while a probe is installed —
        probes win over the stored value."""
        with self._lock:
            self._value += delta

    def set_probe(self, probe: Optional[Callable[[], float]]) -> None:
        with self._lock:
            self._probe = probe

    @property
    def value(self) -> float:
        with self._lock:
            probe, fallback = self._probe, self._value
        if probe is not None:
            try:
                return float(probe())
            except Exception:
                return fallback
        return fallback

    def snapshot(self) -> float:
        return self.value

    def __repr__(self) -> str:
        return f"<Gauge {metric_key(self.name, self.labels)}={self.value}>"


class Histogram:
    """A bounded sliding window of observations with percentile snapshots.

    Percentiles (p50/p90/p99) are computed over the most recent ``window``
    observations; ``count``/``sum``/``min``/``max`` are cumulative over the
    metric's lifetime (what a Prometheus summary exports).  ``observe`` is
    one lock acquisition, one deque append, and three float updates — cheap
    enough for per-request hot paths.
    """

    kind = "histogram"
    __slots__ = (
        "name",
        "labels",
        "window",
        "_lock",
        "_samples",
        "_count",
        "_sum",
        "_min",
        "_max",
    )

    def __init__(
        self,
        name: str,
        labels: Optional[dict[str, str]] = None,
        window: int = DEFAULT_WINDOW,
    ):
        if window < 1:
            raise ValueError(f"histogram window must be >= 1, got {window}")
        self.name = name
        self.labels = dict(labels or {})
        self.window = window
        self._lock = threading.Lock()
        self._samples: deque[float] = deque(maxlen=window)
        self._count = 0
        self._sum = 0.0
        self._min = math.inf
        self._max = -math.inf

    def observe(self, value: float) -> None:
        value = float(value)
        with self._lock:
            self._samples.append(value)
            self._count += 1
            self._sum += value
            if value < self._min:
                self._min = value
            if value > self._max:
                self._max = value

    @property
    def count(self) -> int:
        with self._lock:
            return self._count

    def percentile(
        self, p: float, default: Optional[float] = 0.0
    ) -> Optional[float]:
        """Windowed nearest-rank percentile; ``default`` on an empty window.

        The window (not the cumulative count) is what can be empty — a
        long-lived histogram keeps its totals while the sliding window
        drains only by displacement, so emptiness means "no observation
        yet".  Calibration readers pass ``default=None`` to tell that
        apart from a genuine 0.0 sample.
        """
        with self._lock:
            samples = list(self._samples)
        return percentile(samples, p, default=default)

    def median(self, default: Optional[float] = None) -> Optional[float]:
        """The windowed median, ``default`` (None) before any observation."""
        return self.percentile(50.0, default=default)

    def snapshot(self) -> dict[str, float]:
        with self._lock:
            samples = list(self._samples)
            count, total = self._count, self._sum
            low = self._min if self._count else 0.0
            high = self._max if self._count else 0.0
        return {
            "count": count,
            "sum": total,
            "min": low,
            "max": high,
            "window_count": len(samples),
            "p50": percentile(samples, 50.0),
            "p90": percentile(samples, 90.0),
            "p99": percentile(samples, 99.0),
        }

    def __repr__(self) -> str:
        return f"<Histogram {metric_key(self.name, self.labels)} n={self.count}>"


class MetricsRegistry:
    """A named collection of metrics plus mounted snapshot collectors.

    ``counter``/``gauge``/``histogram`` are get-or-create on the metric's
    identity (name + labels); asking for an existing identity with a
    different metric kind raises, because two call sites disagreeing on
    what a name *is* would silently corrupt each other's numbers.

    Collectors extend the snapshot with component state the registry does
    not own: a collector is a zero-argument callable returning a JSON-clean
    dict, registered under a scope name.  Bound methods are held through
    :class:`weakref.WeakMethod`, so mounting a component never keeps it
    alive — dead collectors drop out of the snapshot (and free their scope
    name) automatically.
    """

    def __init__(self, name: str = ""):
        self.name = name
        self._lock = threading.Lock()
        self._metrics: dict[str, Counter | Gauge | Histogram] = {}
        self._collectors: dict[str, Callable[[], Optional[Callable[[], dict]]]] = {}

    # -- metric construction -------------------------------------------------

    def _get_or_create(self, cls, name: str, labels: dict[str, str], **kwargs):
        key = metric_key(name, labels)
        with self._lock:
            metric = self._metrics.get(key)
            if metric is None:
                metric = cls(name, labels, **kwargs)
                self._metrics[key] = metric
            elif not isinstance(metric, cls):
                raise ValueError(
                    f"metric {key!r} is a {metric.kind}, not a "
                    f"{cls.kind}; pick a different name"
                )
            return metric

    def counter(self, name: str, **labels: str) -> Counter:
        return self._get_or_create(Counter, name, labels)

    def gauge(
        self,
        name: str,
        probe: Optional[Callable[[], float]] = None,
        **labels: str,
    ) -> Gauge:
        gauge = self._get_or_create(Gauge, name, labels)
        if probe is not None:
            gauge.set_probe(probe)
        return gauge

    def histogram(
        self, name: str, window: int = DEFAULT_WINDOW, **labels: str
    ) -> Histogram:
        return self._get_or_create(Histogram, name, labels, window=window)

    # -- collectors ----------------------------------------------------------

    def register_collector(self, scope: str, fn: Callable[[], dict]) -> str:
        """Mount a snapshot provider under ``scope``; returns the scope used.

        A taken scope name gets a ``#N`` suffix (two services mounting
        ``"serve"`` become ``serve`` and ``serve#2``), so callers report
        the returned name, not the requested one.  Bound methods are held
        weakly (via their ``__self__``); plain functions are held strongly
        and live for the registry's lifetime.
        """
        if hasattr(fn, "__self__"):
            ref: Callable[[], Optional[Callable[[], dict]]] = weakref.WeakMethod(fn)
        else:
            ref = lambda fn=fn: fn  # noqa: E731 - strong holder, same shape
        with self._lock:
            self._prune_collectors_locked()
            chosen = scope
            suffix = 2
            while chosen in self._collectors:
                chosen = f"{scope}#{suffix}"
                suffix += 1
            self._collectors[chosen] = ref
            return chosen

    def unregister_collector(self, scope: str) -> None:
        with self._lock:
            self._collectors.pop(scope, None)

    def _prune_collectors_locked(self) -> None:
        dead = [name for name, ref in self._collectors.items() if ref() is None]
        for name in dead:
            del self._collectors[name]

    # -- reading -------------------------------------------------------------

    def metrics(self) -> list[Counter | Gauge | Histogram]:
        """The live metric objects, in creation order."""
        with self._lock:
            return list(self._metrics.values())

    def snapshot(self) -> dict[str, object]:
        """One JSON-clean dict of every metric and collector scope."""
        counters: dict[str, int] = {}
        gauges: dict[str, float] = {}
        histograms: dict[str, dict[str, float]] = {}
        for metric in self.metrics():
            key = metric_key(metric.name, metric.labels)
            if isinstance(metric, Counter):
                counters[key] = metric.snapshot()
            elif isinstance(metric, Gauge):
                gauges[key] = metric.snapshot()
            else:
                histograms[key] = metric.snapshot()
        with self._lock:
            collectors = list(self._collectors.items())
        scopes: dict[str, dict] = {}
        for scope, ref in collectors:
            fn = ref()
            if fn is None:
                continue
            try:
                scopes[scope] = fn()
            except Exception as exc:  # a dying component must not kill stats
                scopes[scope] = {"error": f"{type(exc).__name__}: {exc}"}
        return {
            "counters": counters,
            "gauges": gauges,
            "histograms": histograms,
            "scopes": scopes,
        }

    def reset(self) -> None:
        """Drop every metric (testing hook).  Collectors stay mounted —
        process-lifetime components (the runtime view, live services)
        re-register only at import/construction time."""
        with self._lock:
            self._metrics.clear()

    def __len__(self) -> int:
        with self._lock:
            return len(self._metrics)


#: The process-wide registry every layer reports into.
_REGISTRY = MetricsRegistry("repro")


def get_registry() -> MetricsRegistry:
    """The process-wide :class:`MetricsRegistry`."""
    return _REGISTRY

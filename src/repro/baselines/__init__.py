"""Reference evaluation strategies the paper compares against."""

from repro.baselines.armadillo import ArmadilloEvaluator
from repro.baselines.online import OnlineSearchEvaluator

__all__ = ["ArmadilloEvaluator", "OnlineSearchEvaluator"]

"""The "search at run time" alternative to multi-versioning (paper §I).

The paper contrasts its compile-time multi-versioning with the Linnea-style
alternative: when the sizes become known, *search* for an optimal sequence
of kernel calls and immediately execute it.  No code is generated; instead,
every evaluation pays for a generalized-chain dynamic program (feature
inference, operator rewrites, kernel assignment — everything the compiler
does, but per call).

:class:`OnlineSearchEvaluator` implements that baseline on our substrate.
Its *cost quality* is excellent (it can even beat the Section IV heuristic
variants, since the DP explores all feature trade-offs); its *latency* is
the problem, which `benchmarks/bench_dp_vs_enum.py` quantifies against the
microseconds-scale dispatch of the generated code.  A small plan cache
amortizes repeated instances, mirroring what a production system would do.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Sequence

import numpy as np

from repro.ir.chain import Chain
from repro.compiler.dp import dp_optimal_cost, dp_optimal_plan
from repro.compiler.variant import Variant
from repro.runtime import compile_plan, infer_sizes


class OnlineSearchEvaluator:
    """Search-then-execute evaluation of one chain shape.

    Parameters
    ----------
    chain:
        The symbolic chain (shape) to evaluate.
    cache_size:
        Number of recently planned instances to keep.  ``0`` disables
        caching (every call pays the full search).
    """

    def __init__(self, chain: Chain, cache_size: int = 64):
        self.chain = chain
        self.cache_size = cache_size
        # sizes -> [DP-optimal variant, compiled execution plan or None]:
        # a cache hit replays the plan exactly like the generated runtime
        # does, so the baseline comparison isolates the *search* cost.
        # The plan is compiled lazily on first execution — cost-only
        # callers of plan() never pay for it.
        self._cache: OrderedDict[
            tuple[int, ...], list
        ] = OrderedDict()
        self.searches = 0  #: number of DP searches performed (cache misses)
        self.calls = 0

    def plan(self, sizes: Sequence[int]) -> Variant:
        """The optimal plan for an instance (cached)."""
        return self._planned(self.chain.validate_sizes(sizes))[0]

    def _planned(self, q: tuple[int, ...]) -> list:
        cached = self._cache.get(q)
        if cached is not None:
            self._cache.move_to_end(q)
            return cached
        self.searches += 1
        entry = [dp_optimal_plan(self.chain, q), None]
        if self.cache_size > 0:
            self._cache[q] = entry
            while len(self._cache) > self.cache_size:
                self._cache.popitem(last=False)
        return entry

    def planned_cost(self, sizes: Sequence[int]) -> float:
        """FLOP cost of the plan the search would pick for an instance."""
        return dp_optimal_cost(self.chain, self.chain.validate_sizes(sizes))

    def __call__(self, *arrays: np.ndarray) -> np.ndarray:
        """Evaluate: infer sizes, search for the optimal plan, execute it."""
        if len(arrays) == 1 and isinstance(arrays[0], (list, tuple)):
            arrays = tuple(arrays[0])
        self.calls += 1
        values = [np.asarray(a) for a in arrays]
        sizes = infer_sizes(self.chain, values)
        entry = self._planned(sizes)
        if entry[1] is None:
            entry[1] = compile_plan(entry[0], sizes)
        return entry[1].execute(values)

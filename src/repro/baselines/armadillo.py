"""A model of Armadillo's chain evaluation strategy (paper Section VII-B).

The paper uses Armadillo 14.6.1 as an external reference point, generating
code "that exploits as much knowledge of the input matrices as possible"
(``symmatl``, ``trimatl``/``trimatu``, and ``inv_sympd``).  Armadillo's
documented behaviour for chains longer than four matrices is a left-to-right
pairwise evaluation; its expression templates do not reorder generalized
chains, do not infer features of intermediate results, and translate the
``inv()`` operator into an *explicit inversion* followed by a product rather
than a linear-system solve.

This module models exactly that strategy on our kernel/cost substrate:

* each inverted operand is explicitly inverted up front (``inv_sympd`` for
  SPD operands — POINV; triangular inverse — TRINV; general — GEINV);
* products are evaluated strictly left to right;
* the declared structure of *input* operands is honoured where Armadillo's
  dispatch would use it (``trimatl/trimatu`` products map to TRMM,
  ``symmatl`` products to SYMM), but intermediate results are always
  treated as general matrices — there is no feature inference.

This preserves the paper's qualitative ordering: Armadillo loses to the
in-house left-to-right variant ``L`` (which propagates operators and infers
features), which in turn loses badly to the theory-selected sets.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence

import numpy as np

from repro.ir.chain import Chain
from repro.ir.features import Property, Structure
from repro.kernels.cost import CostFunction
from repro.kernels.spec import (
    GEINV,
    GEMM,
    POINV,
    SYMM,
    TRINV,
    TRMM,
    KernelSpec,
)


@dataclass(frozen=True)
class ArmadilloStep:
    """One kernel call in the Armadillo evaluation plan.

    Mirrors the attribute interface of :class:`repro.compiler.variant.Step`
    (``kernel``, ``cost``, ``call_dims``) so that the simulated machine and
    the performance models can time it with the same code paths.
    """

    kernel: KernelSpec
    cost: CostFunction
    call_dims: tuple[int, int, int]


class ArmadilloEvaluator:
    """Cost/time model of Armadillo's evaluation of one chain shape."""

    def __init__(self, chain: Chain):
        self.chain = chain
        self.steps = tuple(self._plan(chain))

    @staticmethod
    def _inversion_kernel(structure: Structure, prop: Property) -> KernelSpec:
        if prop is Property.SPD:
            return POINV  # inv_sympd
        if structure.is_triangular:
            return TRINV  # inv(trimatl(...)) / inv(trimatu(...))
        return GEINV  # plain inv()

    @staticmethod
    def _product_kernel(
        left_structure: Structure, right_structure: Structure
    ) -> tuple[KernelSpec, str]:
        """Kernel and structured side for a pairwise product.

        Armadillo dispatches ``trimatl/trimatu`` operands to TRMM and
        ``symmatl`` operands to SYMM; everything else (including all
        intermediates, which are plain ``mat``) goes through GEMM.
        """
        if left_structure.is_triangular:
            return TRMM, "left"
        if right_structure.is_triangular:
            return TRMM, "right"
        if left_structure is Structure.SYMMETRIC:
            return SYMM, "left"
        if right_structure is Structure.SYMMETRIC:
            return SYMM, "right"
        return GEMM, "left"

    def _plan(self, chain: Chain):
        # Explicit inversions first: one unary call per inverted operand.
        structures: list[Structure] = []
        for i, operand in enumerate(chain):
            structure = operand.structure
            if operand.inverted:
                kernel = self._inversion_kernel(
                    operand.matrix.structure, operand.matrix.prop
                )
                yield ArmadilloStep(
                    kernel=kernel, cost=kernel.cost(), call_dims=(i, i, i)
                )
                # inv(trimatl(L)) yields a plain mat in Armadillo: the
                # triangularity of the inverse is not tracked.
                structure = Structure.GENERAL
            structures.append(structure)

        # Left-to-right pairwise products; intermediates are general.
        left_structure = structures[0]
        for i in range(1, chain.n):
            kernel, side = self._product_kernel(left_structure, structures[i])
            call_dims = (0, i, i + 1)
            cheap = True
            yield ArmadilloStep(
                kernel=kernel,
                cost=kernel.cost(side=side, cheap=cheap),
                call_dims=call_dims,
            )
            left_structure = Structure.GENERAL

    # -- cost/time evaluation --------------------------------------------------

    def flop_cost_many(self, instances: np.ndarray) -> np.ndarray:
        """Vectorized FLOP cost of the Armadillo plan over instances."""
        instances = np.asarray(instances, dtype=np.float64)
        total = np.zeros(instances.shape[0])
        for step in self.steps:
            m = instances[:, step.call_dims[0]]
            k = instances[:, step.call_dims[1]]
            n = instances[:, step.call_dims[2]]
            for term in step.cost.terms:
                total += float(term.coeff) * m**term.em * k**term.ek * n**term.en
        return total

    def flop_cost(self, sizes: Sequence[int]) -> float:
        return float(self.flop_cost_many(np.asarray([sizes]))[0])

    def time_many(self, machine, instances: np.ndarray) -> np.ndarray:
        """True execution time of the plan on a simulated machine."""
        instances = np.asarray(instances, dtype=np.float64)
        total = np.zeros(instances.shape[0])
        for step in self.steps:
            total += machine.step_time_many(step, instances)
        return total

    def kernel_names(self) -> tuple[str, ...]:
        return tuple(step.kernel.name for step in self.steps)

"""Command-line interface: ``python -m repro.cli <command>``.

Commands:

* ``compile`` — compile a program in the Fig. 2 input language through a
  :class:`~repro.compiler.session.CompilerSession` and show the selected
  variants, their symbolic costs, and (optionally) the generated C++ code;
  ``--output prog.json`` writes the versioned
  :class:`~repro.compiler.program.CompiledProgram` artifact (compile once,
  run anywhere via ``repro run``); ``--cache-dir`` persists compilations
  across invocations; ``--variant-space``/``--max-variants`` pick the
  candidate-generation strategy (the DP-seeded space scales compilation to
  long chains).
* ``run`` — load a compiled artifact (``repro compile --output``, a cache
  entry file, or a served ``artifact`` response saved to disk) and use it
  without recompiling: describe it, dispatch on ``--sizes``, or execute on
  concrete matrices from an ``--npz`` file; ``--backend
  {reference,blas,c,auto}`` picks the execution backend, and dispatching
  prints the compiled plan with the routine each step lowered to.
* ``cache stats`` / ``cache clear`` / ``cache warm`` — inspect, empty, or
  warm-validate the on-disk compilation cache; ``stats`` and ``clear``
  also cover the codegen tier (shared objects compiled by the ``c``
  backend, ``--codegen-cache-dir``/``--codegen-cache-bytes``).
* ``serve`` — long-lived JSON-lines compilation service
  (:mod:`repro.serve`): bounded queue, worker pool (``--workers-mode
  process`` fans compilation out to a process pool and ships artifacts
  back over pipes), request coalescing; stdin/stdout by default, TCP with
  ``--port``; ``--stats`` prints queue depth, coalesce rate, and latency
  percentiles on exit; ``--metrics-port`` additionally serves the
  process-wide :mod:`repro.obs` registry as a Prometheus ``/metrics``
  HTTP endpoint.
* ``stats`` — query a running ``repro serve --port`` instance with one
  ``{"op": "stats"}`` request and print a human summary of the unified
  observability snapshot (service counters, cache tiers, pass timings,
  runtime memo and kernel histograms); ``--json`` dumps the raw response.
* ``compile``/``run`` accept ``--trace out.jsonl``: enable structured
  tracing for the command and stream every span (plus a final metrics
  snapshot) to a JSON-lines file.
* ``fig5`` — run Experiment A (FLOPs, paper Fig. 5) and print the summary
  statistics and eCDF samples.
* ``fig6`` — run Experiment B (execution time, paper Fig. 6).
* ``table1`` — print the kernel database (paper Table I).
* ``header`` — emit the ``gmc_kernels.hpp`` kernel API header.
"""

from __future__ import annotations

import argparse
import os
import sys
import threading

import numpy as np


def _env_cache_dir(fallback: str | None = None) -> str | None:
    """The REPRO_CACHE_DIR override, read at parser-build time.

    ``compile`` defaults to no disk cache unless the env var is set;
    ``cache stats/clear`` default to ``.repro-cache``.
    """
    return os.environ.get("REPRO_CACHE_DIR", fallback)


def _add_codegen_cache_args(p: argparse.ArgumentParser) -> None:
    p.add_argument(
        "--codegen-cache-dir",
        default=None,
        help="directory for shared objects compiled by the 'c' backend "
        "(default: $REPRO_CODEGEN_CACHE_DIR or ~/.cache/repro-codegen)",
    )
    p.add_argument(
        "--codegen-cache-bytes",
        type=int,
        default=None,
        help="bound the codegen cache to this many bytes "
        "(LRU-by-mtime eviction; default: $REPRO_CODEGEN_CACHE_BYTES or 64 MiB)",
    )


def _configure_codegen(args: argparse.Namespace) -> None:
    """Apply the ``--codegen-cache-*`` knobs to the process-wide cache."""
    directory = getattr(args, "codegen_cache_dir", None)
    max_bytes = getattr(args, "codegen_cache_bytes", None)
    if directory is not None or max_bytes is not None:
        from repro.runtime.codegen_cache import configure_codegen_cache

        configure_codegen_cache(directory=directory, max_bytes=max_bytes)


def _make_session(args: argparse.Namespace):
    from repro.compiler.session import CompilerSession, get_default_session

    if getattr(args, "cache_dir", None):
        return CompilerSession(cache_dir=args.cache_dir)
    return get_default_session()


def _print_session_diagnostics(session, args: argparse.Namespace) -> None:
    if getattr(args, "timings", False) and session.last_context is not None:
        print()
        print("pass timings:")
        for name, seconds in session.last_context.timings.items():
            print(f"  {name:<12} {1e3 * seconds:8.2f} ms")
        if session.last_context.skipped:
            skipped = dict.fromkeys(session.last_context.skipped)  # dedupe
            print(f"  skipped (cache hit): {', '.join(skipped)}")
        pool = session.last_context.diagnostics.get("variant_pool")
        if pool:
            print(
                "variant pool: "
                + "  ".join(f"{key}={pool[key]}" for key in sorted(pool))
            )
    if getattr(args, "stats", False):
        print()
        print(f"cache: {session.cache_stats()}")


def _cmd_compile(args: argparse.Namespace) -> int:
    from repro.ir.parser import parse_program

    if args.file:
        with open(args.file) as handle:
            source = handle.read()
    else:
        source = args.source
    if not source:
        print("error: provide --file or --source", file=sys.stderr)
        return 2

    session = _make_session(args)
    program = parse_program(source)
    if len(program.expression) > 1 or (
        program.expression.terms[0].coefficient != 1.0
    ):
        if args.output:
            print(
                "error: --output writes one artifact per compiled chain; "
                "compile each term's bare chain separately (artifacts carry "
                "no term coefficients)",
                file=sys.stderr,
            )
            return 2
        generated = session.compile_expression(
            program.expression,
            expand_by=args.expand,
            num_training_instances=args.train,
            seed=args.seed,
            variant_space=args.variant_space,
            max_variants=args.max_variants,
            backend=args.backend,
            cost_model=args.cost_model,
        )
        print(generated.describe())
        if args.cpp:
            print()
            for i, code in enumerate(generated.term_codes):
                print(code.cpp_source(function_name=f"{args.function_name}_term{i}"))
        _print_session_diagnostics(session, args)
        return 0

    generated = session.compile(
        program.chain,
        expand_by=args.expand,
        num_training_instances=args.train,
        seed=args.seed,
        variant_space=args.variant_space,
        max_variants=args.max_variants,
        backend=args.backend,
        cost_model=args.cost_model,
    )
    print(generated.describe())
    print()
    for variant in generated.variants:
        print(f"cost[{variant.name}] = {variant.symbolic_cost()}")
    if args.cpp:
        print()
        print(generated.cpp_source(function_name=args.function_name))
    if args.output:
        generated.save(args.output)
        print()
        print(f"wrote compiled artifact to {args.output}")
    _print_session_diagnostics(session, args)
    return 0


def _cost_unit(runtime) -> str:
    """The unit of the dispatcher's estimated costs, for display."""
    if getattr(runtime.cost_estimator, "calibrated", False):
        return "s, calibrated"
    return "FLOPs"


def _cmd_run(args: argparse.Namespace) -> int:
    from repro.compiler.program import ArtifactError, CompiledProgram

    _configure_codegen(args)
    try:
        program = CompiledProgram.load(args.artifact)
    except ArtifactError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2

    if args.npz:
        with np.load(args.npz) as archive:
            names = [operand.matrix.name for operand in program.chain]
            if all(name in archive.files for name in names):
                arrays = [np.asarray(archive[name]) for name in names]
            elif len(archive.files) == program.chain.n:
                # Fall back to file order (np.savez positional arr_0..arr_k).
                arrays = [np.asarray(archive[key]) for key in archive.files]
            else:
                print(
                    f"error: {args.npz} holds {len(archive.files)} arrays "
                    f"({', '.join(archive.files)}); the chain needs "
                    f"{program.chain.n} ({', '.join(names)})",
                    file=sys.stderr,
                )
                return 2
        # The artifact's live runtime: sizes inferred once, dispatch and
        # plan-compiled execution in one pass (repro.runtime).
        runtime = program.runtime(
            backend=args.backend, cost_model=args.cost_model
        )
        sizes, variant, cost, result = runtime.run(arrays)
        unit = _cost_unit(runtime)
        print(f"instance sizes: {list(sizes)}")
        print(f"dispatched to: {variant.name}  (estimated cost {cost:g} {unit})")
        _, _, plan = runtime.plan_for(sizes, validate=False)
        print(plan.describe())
        if args.out:
            np.save(args.out, result)
            print(f"wrote result {result.shape} to {args.out}")
        else:
            print(f"result shape: {result.shape}")
            with np.printoptions(precision=6, threshold=64, edgeitems=3):
                print(result)
        return 0

    if args.sizes:
        sizes = [int(part) for part in args.sizes.replace(",", " ").split()]
        runtime = program.runtime(
            backend=args.backend, cost_model=args.cost_model
        )
        variant, cost, plan = runtime.plan_for(sizes)
        print(f"instance sizes: {sizes}")
        print(
            f"dispatched to: {variant.name}  "
            f"(estimated cost {cost:g} {_cost_unit(runtime)})"
        )
        print(plan.describe())
        return 0

    print(program.describe())
    return 0


def _cmd_cache(args: argparse.Namespace) -> int:
    from repro.runtime.codegen_cache import get_codegen_cache
    from repro.serve.backends import DiskBackend

    _configure_codegen(args)
    disk = DiskBackend(args.cache_dir)
    if args.action == "stats":
        stats = disk.stats()
        print(f"cache directory: {stats['directory']}")
        print(f"entries:         {stats['entries']}")
        print(f"total bytes:     {stats['total_bytes']}")
        if stats.get("pruned"):
            print(f"pruned:          {stats['pruned']}")
        if args.verbose:
            for key in disk.keys():
                print(f"  {key}")
        codegen = get_codegen_cache().stats()
        print(f"codegen directory: {codegen['directory']}")
        print(f"codegen entries:   {codegen['entries']}")
        print(
            f"codegen bytes:     {codegen['total_bytes']} "
            f"(budget {codegen['max_bytes']})"
        )
        return 0
    if args.action == "clear":
        removed = disk.clear()
        print(f"removed {removed} cache entries from {disk.directory}")
        codegen = get_codegen_cache()
        removed = codegen.clear()
        print(f"removed {removed} codegen entries from {codegen.directory}")
        return 0
    if args.action == "warm":
        from repro.compiler.session import CompilerSession

        session = CompilerSession(cache_backend=disk)
        warmed = session.warm(args.limit)
        print(f"warmed {warmed} cache entries from {disk.directory}")
        return 0
    print(f"error: unknown cache action {args.action!r}", file=sys.stderr)
    return 2


def _cmd_serve(args: argparse.Namespace) -> int:
    from repro.compiler.pipeline import CompileOptions
    from repro.compiler.session import CompilerSession
    from repro.serve import CompileService, make_tcp_server, serve_stream
    from repro.serve.backends import default_backend

    _configure_codegen(args)
    cache_backend = default_backend(
        args.cache_dir,
        max_entries=args.max_cache_entries,
        max_bytes=args.max_cache_bytes,
    )
    overrides = {
        key: value
        for key, value in (
            ("backend", args.backend),
            ("cost_model", args.cost_model),
        )
        if value
    }
    session = CompilerSession(
        cache_capacity=args.cache_capacity,
        cache_backend=cache_backend,
        options=CompileOptions(**overrides) if overrides else None,
    )
    service = CompileService(
        session,
        workers=args.workers,
        workers_mode=args.workers_mode,
        max_queue=args.max_queue,
        warm=not args.no_warm,
    )
    metrics_server = None
    if args.metrics_port is not None:
        from repro.obs import serve_metrics_http

        metrics_server = serve_metrics_http(args.metrics_port, args.host)
        bound_host, bound_port = metrics_server.server_address[:2]
        print(
            f"Prometheus metrics on http://{bound_host}:{bound_port}/metrics",
            file=sys.stderr,
        )
    if args.workers_mode == "process":
        service.prestart()
        print("process pool ready", file=sys.stderr)
    if service.warmed:
        print(f"warmed {service.warmed} cache entries", file=sys.stderr)
    use_async = getattr(args, "async_frontend", False) or (
        getattr(args, "http_port", None) is not None
    )
    try:
        if use_async:
            from repro.serve import make_async_server

            server = make_async_server(
                service,
                args.host,
                args.port if args.port is not None else 0,
                http_port=args.http_port,
            )
            server.start()
            host, port = server.address
            print(
                f"serving JSON-lines (asyncio) on {host}:{port}",
                file=sys.stderr,
            )
            if server.http_address is not None:
                hhost, hport = server.http_address
                print(
                    f"serving HTTP POST on http://{hhost}:{hport}/",
                    file=sys.stderr,
                )
            try:
                threading.Event().wait()  # until KeyboardInterrupt
            finally:
                server.close()
        elif args.port is not None:
            server = make_tcp_server(service, args.host, args.port)
            host, port = server.address
            print(f"serving JSON-lines on {host}:{port}", file=sys.stderr)
            try:
                server.serve_forever()
            finally:
                server.close()
        else:
            serve_stream(
                service,
                sys.stdin,
                sys.stdout,
                max_requests=args.max_requests,
            )
    except KeyboardInterrupt:
        pass
    finally:
        service.close()
        if metrics_server is not None:
            metrics_server.shutdown()
        if args.stats:
            print(f"service: {service.metrics}", file=sys.stderr)
            print(f"cache: {session.cache_stats()}", file=sys.stderr)
    return 0


def _print_stats_summary(stats: dict) -> None:
    """Human rendering of a ``{"op": "stats"}`` response."""
    print(
        f"protocol v{stats.get('protocol_version')}  "
        f"workers={stats.get('workers')} ({stats.get('workers_mode')})  "
        f"inflight={stats.get('inflight')}  "
        f"registry={stats.get('registry_entries')}"
    )
    service = stats.get("service") or {}
    if service:
        counters = "  ".join(
            f"{name}={service[name]}"
            for name in (
                "requests",
                "compiled",
                "cache_hits",
                "coalesced",
                "rejected",
                "errors",
            )
            if name in service
        )
        print(f"service: {counters}")
        print(
            f"         coalesce_rate={service.get('coalesce_rate')}  "
            f"queue_depth={service.get('queue_depth')}  "
            f"p50={service.get('p50_ms')}ms  p99={service.get('p99_ms')}ms"
        )
    obs = stats.get("obs") or {}
    cache_counters = [
        f"{key}={value}"
        for key, value in sorted((obs.get("counters") or {}).items())
        if key.startswith("cache.")
    ]
    if cache_counters:
        print("cache:   " + "  ".join(cache_counters))
    wire_counters = [
        f"{key}={value}"
        for key, value in sorted((obs.get("counters") or {}).items())
        if key.startswith("serve.wire_bytes")
    ]
    if wire_counters:
        print("wire:    " + "  ".join(wire_counters))
    connections = [
        f"{key}={int(value)}"
        for key, value in sorted((obs.get("gauges") or {}).items())
        if key.startswith("serve.connections")
    ]
    if connections:
        print("conns:   " + "  ".join(connections))
    runtime = (obs.get("scopes") or {}).get("runtime")
    if runtime:
        print(
            f"runtime: dispatchers={runtime.get('dispatchers')}  "
            f"memo_hits={runtime.get('memo_hits')}  "
            f"memo_misses={runtime.get('memo_misses')}  "
            f"memo_evictions={runtime.get('memo_evictions')}  "
            f"reselections={runtime.get('reselections', 0)}  "
            f"executions={runtime.get('executions')}"
        )
    calibration = (obs.get("scopes") or {}).get("calibration")
    if calibration:
        age = calibration.get("age_seconds")
        age_text = f"{age:.1f}s" if isinstance(age, (int, float)) else "never"
        print(
            f"calibration: entries={calibration.get('entries')}  "
            f"samples={calibration.get('samples')}  "
            f"refreshes={calibration.get('refreshes')}  "
            f"age={age_text}"
        )
    histograms = obs.get("histograms") or {}

    def _section(title: str, prefix: str, scale: float, unit: str) -> None:
        rows = {
            key: value
            for key, value in histograms.items()
            if key.startswith(prefix) and isinstance(value, dict)
        }
        if not rows:
            return
        print(title)
        for key, hist in sorted(rows.items()):
            label = key.split("{", 1)[-1].rstrip("}") if "{" in key else key
            print(
                f"  {label:<40} p50={scale * hist.get('p50', 0.0):10.3f} "
                f"{unit}  (n={hist.get('count', 0)})"
            )

    _section("pass timings:", "compiler.pass_seconds", 1e3, "ms")
    _section("execution:", "runtime.execute_seconds", 1e6, "us")
    _section("kernels:", "runtime.kernel_seconds", 1e6, "us")


def _cmd_stats(args: argparse.Namespace) -> int:
    import json
    import socket

    payload = json.dumps({"op": "stats", "id": 0}) + "\n"
    try:
        with socket.create_connection(
            (args.host, args.port), timeout=args.timeout
        ) as conn:
            conn.sendall(payload.encode("utf-8"))
            with conn.makefile("r", encoding="utf-8") as reader:
                line = reader.readline()
    except OSError as exc:
        print(
            f"error: cannot reach {args.host}:{args.port}: {exc}",
            file=sys.stderr,
        )
        return 2
    if not line.strip():
        print("error: empty response from server", file=sys.stderr)
        return 2
    response = json.loads(line)
    if not response.get("ok"):
        print(f"error: {response.get('error')}", file=sys.stderr)
        return 2
    if args.json:
        print(json.dumps(response, indent=2, sort_keys=True))
        return 0
    _print_stats_summary(response)
    return 0


def _print_ecdf(name: str, ecdf, xs) -> None:
    curve = ", ".join(f"{x:g}:{100 * y:.1f}%" for x, y in ecdf.curve(xs))
    print(f"  eCDF[{name}] {curve}  (max {ecdf.max:.2f})")


def _cmd_fig5(args: argparse.Namespace) -> int:
    from repro.experiments.flops_experiment import run_flops_experiment

    result = run_flops_experiment(
        n_values=tuple(args.n),
        shapes_per_n=None if args.full else args.shapes,
        train_instances=args.train,
        val_instances=args.val,
        seed=args.seed,
        verbose=args.verbose,
    )
    print("Experiment A (Fig. 5): ratio over optimal number of FLOPs")
    print(result.summary_table())
    xs = (1.0, 1.05, 1.1, 1.2, 1.3, 1.4, 1.5)
    for n in sorted(result.ratios):
        print(f"n = {n}:")
        for set_name in result.ratios[n]:
            _print_ecdf(set_name, result.ecdf(n, set_name), xs)
    if args.plot:
        from repro.experiments.figures import render_fig5

        for n in sorted(result.ratios):
            print()
            print(render_fig5(result, n))
    return 0


def _cmd_fig6(args: argparse.Namespace) -> int:
    from repro.experiments.time_experiment import run_time_experiment

    result = run_time_experiment(
        num_shapes=args.shapes,
        train_instances=args.train,
        val_instances=args.val,
        seed=args.seed,
        verbose=args.verbose,
    )
    print("Experiment B (Fig. 6): ratio over optimal execution time")
    print(result.summary_table())
    xs = (1.0, 1.1, 1.5, 2.0, 2.5, 3.0)
    for set_name in result.ratios:
        _print_ecdf(set_name, result.ecdf(set_name), xs)
    if args.plot:
        from repro.experiments.figures import render_fig6

        print()
        print(render_fig6(result))
    return 0


def _cmd_table1(args: argparse.Namespace) -> int:
    from repro.kernels.spec import KERNELS

    print(f"{'kernel':<10} {'kind':<8} {'BLAS':<5} {'cost (left / cheap)':<24} type")
    print("-" * 70)
    for kernel in KERNELS.values():
        cost = kernel.cost(side="left", cheap=True)
        print(
            f"{kernel.name:<10} {kernel.kind:<8} "
            f"{'yes' if kernel.in_blas else 'no':<5} "
            f"{str(cost):<24} {cost.cost_type.value}"
        )
    return 0


def _cmd_header(args: argparse.Namespace) -> int:
    from repro.codegen.cpp_emitter import emit_kernels_header

    print(emit_kernels_header())
    return 0


def _read_source(args: argparse.Namespace) -> str | None:
    if args.file:
        with open(args.file) as handle:
            return handle.read()
    return args.source


def _cmd_analyze(args: argparse.Namespace) -> int:
    from repro.api import compile_chain

    source = _read_source(args)
    if not source:
        print("error: provide --file or --source", file=sys.stderr)
        return 2
    generated = compile_chain(
        source, num_training_instances=args.train, seed=args.seed
    )
    print(generated.report(num_instances=args.instances, seed=args.seed))
    return 0


def _cmd_pygen(args: argparse.Namespace) -> int:
    from repro.api import compile_chain

    source = _read_source(args)
    if not source:
        print("error: provide --file or --source", file=sys.stderr)
        return 2
    generated = compile_chain(
        source,
        expand_by=args.expand,
        num_training_instances=args.train,
        seed=args.seed,
    )
    print(generated.python_source())
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="GMC symbolic-size compiler (CGO 2026 reproduction)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p = sub.add_parser("compile", help="compile a chain program")
    p.add_argument("--file", help="path to a program in the Fig. 2 language")
    p.add_argument("--source", help="inline program source")
    p.add_argument("--expand", type=int, default=0, help="extra variants (Alg. 1)")
    p.add_argument("--train", type=int, default=1000)
    p.add_argument("--seed", type=int, default=0)
    p.add_argument(
        "--variant-space",
        choices=["auto", "exhaustive", "dp", "dp-adaptive"],
        default=None,
        help="candidate generation: exhaustive enumeration, DP-seeded "
        "sparse pool (scales to long chains), dp-adaptive (grow the DP "
        "seeding until held-out penalty plateaus), or auto by chain "
        "length (default: the session's own default, i.e. auto)",
    )
    p.add_argument(
        "--max-variants",
        type=int,
        default=None,
        help="bound the candidate pool (fanning-out variants always kept)",
    )
    p.add_argument(
        "--backend",
        choices=["reference", "blas", "c", "auto"],
        default=None,
        help="execution backend of the built dispatcher, recorded in the "
        "artifact (default: the session's default, i.e. reference)",
    )
    p.add_argument(
        "--cost-model",
        choices=["flops", "calibrated"],
        default=None,
        help="dispatcher cost model: flops (analytic, default) or "
        "calibrated (feedback-directed per-kernel FLOP/s learned from "
        "measured timings; recorded in the artifact)",
    )
    p.add_argument("--cpp", action="store_true", help="emit generated C++")
    p.add_argument("--function-name", default="evaluate_chain")
    p.add_argument(
        "--output",
        "-o",
        default=None,
        help="write the compiled artifact (versioned CompiledProgram JSON) "
        "to this file; load it later with `repro run` or "
        "repro.api.load_program",
    )
    p.add_argument(
        "--cache-dir",
        default=_env_cache_dir(),
        help="persist compilations to this directory (content-addressed; "
        "defaults to $REPRO_CACHE_DIR when set, else no disk cache)",
    )
    p.add_argument(
        "--timings", action="store_true", help="print per-pass wall times"
    )
    p.add_argument(
        "--stats", action="store_true", help="print compilation-cache stats"
    )
    p.add_argument(
        "--trace",
        default=None,
        metavar="OUT.JSONL",
        help="enable structured tracing and write spans (plus a final "
        "metrics snapshot) to this JSON-lines file",
    )
    p.set_defaults(func=_cmd_compile)

    p = sub.add_parser(
        "run",
        help="load a compiled artifact and describe, dispatch, or execute it",
    )
    p.add_argument("artifact", help="path to a CompiledProgram artifact file")
    p.add_argument(
        "--sizes",
        default=None,
        help="comma- or space-separated instance sizes q0,..,qn: print the "
        "variant the dispatcher selects and its cost",
    )
    p.add_argument(
        "--npz",
        default=None,
        help="execute on concrete matrices from this .npz archive (entries "
        "named after the chain's matrices, or positional)",
    )
    p.add_argument(
        "--out", default=None, help="write the executed result to this .npy file"
    )
    p.add_argument(
        "--backend",
        choices=["reference", "blas", "c", "auto"],
        default=None,
        help="execution backend: reference (numpy substrate), blas (direct "
        "scipy.linalg.blas/lapack lowering), c (code-generated native "
        "step loops, falls back to blas without a C toolchain), or auto "
        "(micro-benchmark the candidates per size vector, run the "
        "measured winner); default: the backend recorded in the artifact",
    )
    p.add_argument(
        "--cost-model",
        choices=["flops", "calibrated"],
        default=None,
        help="dispatcher cost model override: flops (analytic) or "
        "calibrated (shipped/learned per-kernel FLOP/s); default: the "
        "model recorded in the artifact",
    )
    _add_codegen_cache_args(p)
    p.add_argument(
        "--trace",
        default=None,
        metavar="OUT.JSONL",
        help="enable structured tracing and write spans (plus a final "
        "metrics snapshot) to this JSON-lines file",
    )
    p.set_defaults(func=_cmd_run)

    p = sub.add_parser("cache", help="inspect, warm, or clear the on-disk cache")
    p.add_argument("action", choices=["stats", "clear", "warm"])
    p.add_argument(
        "--cache-dir",
        default=_env_cache_dir(".repro-cache"),
        help="cache directory (default: $REPRO_CACHE_DIR or .repro-cache)",
    )
    p.add_argument(
        "--verbose", action="store_true", help="list entry keys (stats)"
    )
    p.add_argument(
        "--limit", type=int, default=None, help="max entries to warm (warm)"
    )
    _add_codegen_cache_args(p)
    p.set_defaults(func=_cmd_cache)

    p = sub.add_parser(
        "serve",
        help="JSON-lines compilation service (stdin/stdout, or TCP with --port)",
    )
    p.add_argument(
        "--cache-dir",
        default=_env_cache_dir(),
        help="persist compilations to this directory (defaults to "
        "$REPRO_CACHE_DIR when set, else no disk cache)",
    )
    p.add_argument(
        "--cache-capacity", type=int, default=256, help="in-memory LRU entries"
    )
    p.add_argument(
        "--max-cache-entries",
        type=int,
        default=None,
        help="bound the disk cache to this many entries (LRU-by-mtime pruning)",
    )
    p.add_argument(
        "--max-cache-bytes",
        type=int,
        default=None,
        help="bound the disk cache to this many bytes (LRU-by-mtime pruning)",
    )
    p.add_argument(
        "--workers", type=int, default=None, help="worker threads (default: auto)"
    )
    p.add_argument(
        "--workers-mode",
        choices=["thread", "process"],
        default="thread",
        help="run compilations on worker threads (default) or fan them out "
        "to a process pool that ships artifacts back over pipes "
        "(GIL-free throughput on distinct structures)",
    )
    p.add_argument(
        "--max-queue", type=int, default=256, help="bound on queued compilations"
    )
    p.add_argument(
        "--backend",
        choices=["reference", "blas", "c", "auto"],
        default=None,
        help="default execution backend for served compilations (per-request "
        "'backend' options override it)",
    )
    p.add_argument(
        "--cost-model",
        choices=["flops", "calibrated"],
        default=None,
        help="default dispatcher cost model for served compilations "
        "(per-request 'cost_model' options override it)",
    )
    _add_codegen_cache_args(p)
    p.add_argument(
        "--no-warm",
        action="store_true",
        help="skip cache warm-up on startup",
    )
    p.add_argument("--port", type=int, default=None, help="serve TCP on this port")
    p.add_argument("--host", default="127.0.0.1", help="TCP bind address")
    p.add_argument(
        "--async",
        dest="async_frontend",
        action="store_true",
        help="serve the JSON-lines protocol from one asyncio event loop "
        "instead of a thread per connection (scales to thousands of "
        "mostly-idle connections; use with --port, 0 picks a free port)",
    )
    p.add_argument(
        "--http-port",
        type=int,
        default=None,
        help="additionally accept HTTP/1.1 POSTs of JSON request bodies "
        "on this port (implies --async; 0 picks a free port)",
    )
    p.add_argument(
        "--max-requests",
        type=int,
        default=None,
        help="stdin mode: exit after this many requests",
    )
    p.add_argument(
        "--stats",
        action="store_true",
        help="print service metrics and cache stats to stderr on exit",
    )
    p.add_argument(
        "--metrics-port",
        type=int,
        default=None,
        help="serve the process-wide metrics registry as Prometheus text "
        "on this HTTP port (/metrics; 0 picks a free port)",
    )
    p.set_defaults(func=_cmd_serve)

    p = sub.add_parser(
        "stats",
        help="query a running `repro serve --port` instance and print a "
        "human summary of its unified observability snapshot",
    )
    p.add_argument("--host", default="127.0.0.1", help="server address")
    p.add_argument("--port", type=int, required=True, help="server TCP port")
    p.add_argument(
        "--timeout", type=float, default=10.0, help="connect/read timeout (s)"
    )
    p.add_argument(
        "--json", action="store_true", help="print the raw JSON response"
    )
    p.set_defaults(func=_cmd_stats)

    p = sub.add_parser("fig5", help="Experiment A: FLOPs (Fig. 5)")
    p.add_argument("--n", type=int, nargs="+", default=[5, 6, 7])
    p.add_argument("--shapes", type=int, default=50, help="shapes per n")
    p.add_argument("--full", action="store_true", help="enumerate all shapes")
    p.add_argument("--train", type=int, default=2000)
    p.add_argument("--val", type=int, default=200)
    p.add_argument("--seed", type=int, default=0)
    p.add_argument("--verbose", action="store_true")
    p.add_argument("--plot", action="store_true", help="ASCII eCDF charts")
    p.set_defaults(func=_cmd_fig5)

    p = sub.add_parser("fig6", help="Experiment B: execution time (Fig. 6)")
    p.add_argument("--shapes", type=int, default=100)
    p.add_argument("--train", type=int, default=2000)
    p.add_argument("--val", type=int, default=200)
    p.add_argument("--seed", type=int, default=0)
    p.add_argument("--verbose", action="store_true")
    p.add_argument("--plot", action="store_true", help="ASCII eCDF chart")
    p.set_defaults(func=_cmd_fig6)

    p = sub.add_parser("table1", help="print the kernel database (Table I)")
    p.set_defaults(func=_cmd_table1)

    p = sub.add_parser("analyze", help="markdown compilation report for a chain")
    p.add_argument("--file", help="path to a program in the Fig. 2 language")
    p.add_argument("--source", help="inline program source")
    p.add_argument("--train", type=int, default=500)
    p.add_argument("--instances", type=int, default=300)
    p.add_argument("--seed", type=int, default=0)
    p.set_defaults(func=_cmd_analyze)

    p = sub.add_parser("pygen", help="emit standalone Python generated code")
    p.add_argument("--file", help="path to a program in the Fig. 2 language")
    p.add_argument("--source", help="inline program source")
    p.add_argument("--expand", type=int, default=0)
    p.add_argument("--train", type=int, default=500)
    p.add_argument("--seed", type=int, default=0)
    p.set_defaults(func=_cmd_pygen)

    p = sub.add_parser("header", help="emit gmc_kernels.hpp")
    p.set_defaults(func=_cmd_header)

    return parser


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    trace_path = getattr(args, "trace", None)
    if trace_path:
        from repro.obs import tracing_to

        with tracing_to(trace_path):
            status = args.func(args)
        print(f"wrote trace to {trace_path}", file=sys.stderr)
        return status
    return args.func(args)


if __name__ == "__main__":
    raise SystemExit(main())

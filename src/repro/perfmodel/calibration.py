"""Performance models calibrated from measured kernel timings.

:class:`repro.perfmodel.models.PerformanceModelSet` samples the *simulated*
machine; this module applies the identical methodology to the *real* one:
time each NumPy/SciPy reference kernel on the Cartesian grid (the paper
uses six points per axis over [50, 1000]), record FLOP/s, interpolate, and
estimate variant times as FLOPs / interpolated performance.  The resulting
:class:`MeasuredPerformanceModelSet` is a drop-in replacement for the
simulated model set, so the Fig. 6 experiment can be re-run against actual
hardware (``run_time_experiment`` accepts any machine/model pair with the
same interface).

Measurements use the median of repeated runs, as in the paper.
"""

from __future__ import annotations

import statistics
import time
from typing import Callable, Iterable, Optional, Sequence

import numpy as np
from scipy.interpolate import RegularGridInterpolator

from repro.kernels import reference as ref
from repro.kernels.spec import get_kernel
from repro.perfmodel.machine import SimulatedMachine
from repro.perfmodel.models import (
    KERNEL_MODEL_DIMS,
    KernelModel,
    PerformanceModelSet,
)


def _spd(n: int, rng: np.random.Generator) -> np.ndarray:
    a = rng.standard_normal((n, n))
    return a @ a.T / np.sqrt(n) + np.eye(n)


def _sym(n: int, rng: np.random.Generator) -> np.ndarray:
    a = rng.standard_normal((n, n))
    return (a + a.T) / 2 + np.eye(n) * n


def _low(n: int, rng: np.random.Generator) -> np.ndarray:
    t = np.tril(rng.standard_normal((n, n)))
    t[np.diag_indices(n)] = np.abs(np.diag(t)) + 1.0
    return t


def _gen(m: int, n: int, rng: np.random.Generator) -> np.ndarray:
    return rng.standard_normal((m, n))


def _gen_inv(n: int, rng: np.random.Generator) -> np.ndarray:
    return rng.standard_normal((n, n)) + np.eye(n) * np.sqrt(n)


def _diag(n: int, rng: np.random.Generator) -> np.ndarray:
    return np.diag(np.abs(rng.standard_normal(n)) + 1.0)


def build_call(
    kernel: str, m: int, k: int, n: int, rng: np.random.Generator
) -> Callable[[], object]:
    """A zero-argument callable issuing one kernel invocation of given dims."""
    builders: dict[str, Callable[[], Callable[[], object]]] = {
        "GEMM": lambda: (lambda a=_gen(m, k, rng), b=_gen(k, n, rng): ref.gemm(a, b)),
        "SYMM": lambda: (lambda s=_sym(m, rng), g=_gen(m, n, rng): ref.symm(s, g)),
        "TRMM": lambda: (lambda t=_low(m, rng), g=_gen(m, n, rng): ref.trmm(t, g)),
        "TRSM": lambda: (lambda t=_low(m, rng), g=_gen(m, n, rng): ref.trsm(t, g)),
        "SYSYMM": lambda: (lambda a=_sym(m, rng), b=_sym(m, rng): ref.sysymm(a, b)),
        "TRSYMM": lambda: (lambda t=_low(m, rng), s=_sym(m, rng): ref.trsymm(t, s)),
        "TRTRMM": lambda: (lambda a=_low(m, rng), b=_low(m, rng): ref.trtrmm(a, b)),
        "GEGESV": lambda: (
            lambda a=_gen_inv(m, rng), b=_gen(m, n, rng): ref.gegesv(a, b)
        ),
        "GESYSV": lambda: (
            lambda a=_gen_inv(m, rng), b=_sym(m, rng): ref.gesysv(a, b)
        ),
        "GETRSV": lambda: (
            lambda a=_gen_inv(m, rng), b=_low(m, rng): ref.getrsv(a, b)
        ),
        "SYGESV": lambda: (lambda a=_sym(m, rng), b=_gen(m, n, rng): ref.sygesv(a, b)),
        "SYSYSV": lambda: (lambda a=_sym(m, rng), b=_sym(m, rng): ref.sysysv(a, b)),
        "SYTRSV": lambda: (lambda a=_sym(m, rng), b=_low(m, rng): ref.sytrsv(a, b)),
        "POGESV": lambda: (lambda a=_spd(m, rng), b=_gen(m, n, rng): ref.pogesv(a, b)),
        "POSYSV": lambda: (lambda a=_spd(m, rng), b=_sym(m, rng): ref.posysv(a, b)),
        "POTRSV": lambda: (lambda a=_spd(m, rng), b=_low(m, rng): ref.potrsv(a, b)),
        "TRSYSV": lambda: (lambda a=_low(m, rng), b=_sym(m, rng): ref.trsysv(a, b)),
        "TRTRSV": lambda: (
            lambda a=_low(m, rng), b=_low(m, rng).T.copy(): ref.trtrsv(
                a, b, lower=True
            )
        ),
        "DIMM": lambda: (lambda d=_diag(m, rng), b=_gen(m, n, rng): ref.dimm(d, b)),
        "DIDIMM": lambda: (lambda a=_diag(m, rng), b=_diag(m, rng): ref.didimm(a, b)),
        "DIGESV": lambda: (lambda d=_diag(m, rng), b=_gen(m, n, rng): ref.digesv(d, b)),
        "DISYSV": lambda: (lambda d=_diag(m, rng), b=_sym(m, rng): ref.disysv(d, b)),
        "DITRSV": lambda: (lambda d=_diag(m, rng), b=_low(m, rng): ref.ditrsv(d, b)),
        "DIDISV": lambda: (lambda a=_diag(m, rng), b=_diag(m, rng): ref.didisv(a, b)),
        "GEINV": lambda: (lambda a=_gen_inv(m, rng): ref.geinv(a)),
        "SYINV": lambda: (lambda a=_sym(m, rng): ref.syinv(a)),
        "POINV": lambda: (lambda a=_spd(m, rng): ref.poinv(a)),
        "TRINV": lambda: (lambda a=_low(m, rng): ref.trinv(a)),
        "DIINV": lambda: (lambda a=_diag(m, rng): ref.diinv(a)),
    }
    try:
        return builders[kernel]()
    except KeyError:
        raise KeyError(f"no measurement recipe for kernel {kernel!r}") from None


def measure_performance(
    kernel: str,
    m: int,
    k: int,
    n: int,
    repeats: int = 3,
    rng: Optional[np.random.Generator] = None,
) -> float:
    """Measured FLOP/s of one kernel configuration (median of repeats)."""
    rng = rng or np.random.default_rng(0)
    call = build_call(kernel, m, k, n, rng)
    call()  # warm-up (allocations, BLAS thread pools)
    samples = []
    for _ in range(repeats):
        start = time.perf_counter()
        call()
        samples.append(time.perf_counter() - start)
    seconds = max(statistics.median(samples), 1e-9)
    flops = get_kernel(kernel).cost(side="left", cheap=True).evaluate(m, k, n)
    if flops <= 0.0:
        return 0.0
    return flops / seconds


class MeasuredPerformanceModelSet(PerformanceModelSet):
    """Grid-interpolated models calibrated against wall-clock measurements.

    Exposes the same estimation interface as the simulated
    :class:`PerformanceModelSet` (``variant_time_many`` etc.), so it can be
    handed to the Fig. 6 harness to run the experiment on real hardware.
    Data-movement kernels (TRANSPOSE/COPY) still use the analytic bandwidth
    model of the attached :class:`SimulatedMachine`.
    """

    def __init__(
        self,
        grid: Sequence[float] = (50.0, 100.0, 300.0),
        repeats: int = 3,
        kernels: Optional[Iterable[str]] = None,
        seed: int = 0,
    ):
        # Deliberately does NOT call super().__init__: models come from
        # measurements, not from sampling the simulated machine.
        self.machine = SimulatedMachine()
        self.grid = tuple(float(g) for g in grid)
        self.repeats = repeats
        self.models = {}
        rng = np.random.default_rng(seed)
        axis = np.asarray(self.grid)
        names = list(kernels) if kernels is not None else list(KERNEL_MODEL_DIMS)
        for name in names:
            dims = KERNEL_MODEL_DIMS[name]
            if dims == "mkn":
                perf = np.empty((axis.size,) * 3)
                for i, m in enumerate(axis):
                    for j, k in enumerate(axis):
                        for l, n in enumerate(axis):
                            perf[i, j, l] = measure_performance(
                                name, int(m), int(k), int(n), repeats, rng
                            )
                interp = RegularGridInterpolator((axis, axis, axis), perf)
            elif dims == "mn":
                perf = np.empty((axis.size,) * 2)
                for i, m in enumerate(axis):
                    for j, n in enumerate(axis):
                        perf[i, j] = measure_performance(
                            name, int(m), int(m), int(n), repeats, rng
                        )
                interp = RegularGridInterpolator((axis, axis), perf)
            else:
                perf = np.empty(axis.size)
                for i, m in enumerate(axis):
                    perf[i] = measure_performance(
                        name, int(m), int(m), int(m), repeats, rng
                    )
                interp = RegularGridInterpolator((axis,), perf)
            self.models[name] = KernelModel(
                name, dims, interp, lo=self.grid[0], hi=self.grid[-1]
            )

"""Performance modelling (paper Section VII-B).

* :mod:`repro.perfmodel.machine` — a deterministic simulated machine that
  assigns an execution time to every kernel call (the reproduction's
  substitute for the paper's Xeon Gold 6132 + OpenBLAS testbed).
* :mod:`repro.perfmodel.models` — per-kernel performance models built by
  sampling FLOP/s on a 6-point-per-axis Cartesian grid over [50, 1000] and
  interpolating, exactly mirroring the paper's methodology.
* :mod:`repro.perfmodel.timing` — optional wall-clock measurement of the
  NumPy reference kernels for users on real hardware.
"""

from repro.perfmodel.machine import SimulatedMachine
from repro.perfmodel.models import PerformanceModelSet

__all__ = ["SimulatedMachine", "PerformanceModelSet"]

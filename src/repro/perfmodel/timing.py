"""Wall-clock timing of the NumPy reference kernels.

For users who want real-hardware numbers instead of the simulated machine,
this module measures the reference implementations and can feed measured
FLOP/s grids into :class:`~repro.perfmodel.models.PerformanceModelSet`-style
interpolation.  Measurements are summarized by the median of repeated runs,
as in the paper.
"""

from __future__ import annotations

import statistics
import time
from typing import Callable, Sequence

import numpy as np

from repro.compiler.executor import execute_variant
from repro.compiler.variant import Variant


def time_callable(fn: Callable[[], object], repeats: int = 10) -> float:
    """Median wall-clock seconds of ``fn`` over ``repeats`` runs."""
    if repeats < 1:
        raise ValueError("repeats must be >= 1")
    samples = []
    for _ in range(repeats):
        start = time.perf_counter()
        fn()
        samples.append(time.perf_counter() - start)
    return statistics.median(samples)


def time_variant(
    variant: Variant,
    arrays: Sequence[np.ndarray],
    repeats: int = 10,
) -> float:
    """Median wall-clock seconds to execute a variant on concrete operands."""
    return time_callable(lambda: execute_variant(variant, list(arrays)), repeats)


def measured_performance(
    variant: Variant, arrays: Sequence[np.ndarray], sizes: Sequence[int], repeats: int = 10
) -> float:
    """Measured FLOP/s of a variant execution (analytic FLOPs / median time)."""
    seconds = time_variant(variant, arrays, repeats)
    if seconds <= 0.0:
        return float("inf")
    return variant.flop_cost(sizes) / seconds

"""Grid-interpolation performance models (paper Section VII-B).

The paper constructs per-kernel performance models "by timing each kernel on
a 3D/2D/1D Cartesian grid with six points per axis over the range [50, 1000]
(50, 100, 300, 500, 700, 1000).  For each point, we recorded the performance
(FLOP/s). ... the corresponding model estimates the performance by
interpolating the grid samples.  The FLOP count is then divided by the
estimated performance to obtain the execution time."

We do exactly that against the simulated machine: the grid dimensionality
per kernel follows the kernel's free dimensions (GEMM is 3-D in (m, k, n);
kernels with one square operand are 2-D in (m, n); all-square kernels are
1-D in m), samples record FLOP/s, and estimates interpolate linearly with
clamping at the grid boundary.  The model is deliberately *crude* — exactly
like the paper's — so model-based estimates deviate from the machine's true
times between grid points and outside sampled configurations.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np
from scipy.interpolate import RegularGridInterpolator

from repro.perfmodel.machine import SimulatedMachine

GRID_POINTS = (50.0, 100.0, 300.0, 500.0, 700.0, 1000.0)

#: Free dimensions sampled per kernel: "mkn" (3-D), "mn" (2-D), "m" (1-D).
KERNEL_MODEL_DIMS: dict[str, str] = {
    "GEMM": "mkn",
    "SYMM": "mn",
    "TRMM": "mn",
    "TRSM": "mn",
    "GEGESV": "mn",
    "SYGESV": "mn",
    "POGESV": "mn",
    "SYSYMM": "m",
    "TRSYMM": "m",
    "TRTRMM": "m",
    "GESYSV": "m",
    "GETRSV": "m",
    "SYSYSV": "m",
    "SYTRSV": "m",
    "POSYSV": "m",
    "POTRSV": "m",
    "TRSYSV": "m",
    "TRTRSV": "m",
    "GEINV": "m",
    "SYINV": "m",
    "POINV": "m",
    "TRINV": "m",
    "DIMM": "mn",
    "DIGESV": "mn",
    "DIDIMM": "m",
    "DISYSV": "m",
    "DITRSV": "m",
    "DIDISV": "m",
    "DIINV": "m",
}


@dataclass(frozen=True)
class KernelModel:
    """Interpolated FLOP/s surface for one kernel."""

    kernel: str
    dims: str
    interpolator: RegularGridInterpolator
    #: Sampled range; queries outside it are clamped to the boundary.
    lo: float = GRID_POINTS[0]
    hi: float = GRID_POINTS[-1]

    def performance(self, m, k, n):
        """Estimated FLOP/s for a call with the given dimensions."""
        m = np.atleast_1d(np.asarray(m, dtype=np.float64))
        k = np.atleast_1d(np.asarray(k, dtype=np.float64))
        n = np.atleast_1d(np.asarray(n, dtype=np.float64))
        if self.dims == "mkn":
            points = np.stack([m, k, n], axis=-1)
        elif self.dims == "mn":
            points = np.stack([m, n], axis=-1)
        else:
            points = m[:, None]
        return self.interpolator(np.clip(points, self.lo, self.hi))


class PerformanceModelSet:
    """All kernel models sampled from one machine (or real measurements)."""

    def __init__(self, machine: SimulatedMachine, grid: Sequence[float] = GRID_POINTS):
        self.machine = machine
        self.grid = tuple(float(g) for g in grid)
        self.models: dict[str, KernelModel] = {}
        axis = np.asarray(self.grid)
        for kernel, dims in KERNEL_MODEL_DIMS.items():
            if dims == "mkn":
                mg, kg, ng = np.meshgrid(axis, axis, axis, indexing="ij")
                perf = machine.performance(kernel, mg, kg, ng)
                interp = RegularGridInterpolator((axis, axis, axis), perf)
            elif dims == "mn":
                # The sampled configuration fixes k = m (coefficient /
                # structured operand on the left), as a crude model would.
                mg, ng = np.meshgrid(axis, axis, indexing="ij")
                perf = machine.performance(kernel, mg, mg, ng)
                interp = RegularGridInterpolator((axis, axis), perf)
            else:
                perf = machine.performance(kernel, axis, axis, axis)
                interp = RegularGridInterpolator((axis,), perf)
            self.models[kernel] = KernelModel(
                kernel, dims, interp, lo=self.grid[0], hi=self.grid[-1]
            )

    def step_time_many(self, step, instances: np.ndarray) -> np.ndarray:
        """Model-estimated execution time of one variant step."""
        instances = np.asarray(instances, dtype=np.float64)
        m = instances[:, step.call_dims[0]]
        k = instances[:, step.call_dims[1]]
        n = instances[:, step.call_dims[2]]
        flops = np.zeros(instances.shape[0])
        for term in step.cost.terms:
            flops += float(term.coeff) * m**term.em * k**term.ek * n**term.en
        name = step.kernel.name
        if name in ("TRANSPOSE", "COPY"):
            return self.machine.time_call(name, flops, m, k, n)
        perf = self.models[name].performance(m, k, n)
        return flops / perf

    def fixup_time_many(self, fixup, instances: np.ndarray) -> np.ndarray:
        instances = np.asarray(instances, dtype=np.float64)
        d = instances[:, fixup.dim]
        flops = np.zeros(instances.shape[0])
        for term in fixup.cost.terms:
            flops += float(term.coeff) * d ** (term.em + term.ek + term.en)
        name = fixup.kernel.name
        if name in ("TRANSPOSE", "COPY"):
            return self.machine.time_call(name, flops, d, d, d)
        perf = self.models[name].performance(d, d, d)
        return flops / perf

    def variant_time_many(self, variant, instances: np.ndarray) -> np.ndarray:
        """Model-estimated execution time of a variant on many instances."""
        instances = np.asarray(instances, dtype=np.float64)
        total = np.zeros(instances.shape[0])
        for step in variant.steps:
            total += self.step_time_many(step, instances)
        for fixup in variant.fixups:
            total += self.fixup_time_many(fixup, instances)
        return total

    def variant_time(self, variant, sizes: Sequence[int]) -> float:
        q = np.asarray([sizes], dtype=np.float64)
        return float(self.variant_time_many(variant, q)[0])

"""A deterministic simulated machine for kernel execution times.

The paper times kernels on an Intel Xeon Gold 6132 (14 cores, OpenBLAS).
We replace that testbed with a roofline-style analytic machine:

* every kernel runs at a kernel-specific fraction of machine peak —
  ``GEMM`` is the most efficient, structured products somewhat less so, and
  factorization-based solves markedly less (matching the universally
  observed BLAS-3 > LAPACK-solve efficiency ordering);
* efficiency *saturates* with problem size: small problems run far below
  peak (``s / (s + s_half)`` with ``s`` the geometric mean of the call
  dimensions), so the FLOP-optimal variant is not always time-optimal —
  the exact phenomenon the paper's execution-time experiment exercises;
* zero-FLOP data-movement kernels (transpose/copy) are charged at memory
  bandwidth.

The machine is a pure function of the call: noise-free and reproducible.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Mapping, Sequence

import numpy as np

#: Fraction of peak FLOP/s each kernel reaches asymptotically.
DEFAULT_KERNEL_EFFICIENCY: dict[str, float] = {
    "GEMM": 1.00,
    "SYMM": 0.85,
    "TRMM": 0.80,
    "SYSYMM": 0.80,
    "TRSYMM": 0.75,
    "TRTRMM": 0.70,
    "TRSM": 0.72,
    "TRSYSV": 0.65,
    "TRTRSV": 0.60,
    "GEGESV": 0.55,
    "GESYSV": 0.50,
    "GETRSV": 0.50,
    "SYGESV": 0.45,
    "SYSYSV": 0.45,
    "SYTRSV": 0.45,
    "POGESV": 0.60,
    "POSYSV": 0.55,
    "POTRSV": 0.55,
    "GEINV": 0.50,
    "SYINV": 0.45,
    "POINV": 0.55,
    "TRINV": 0.60,
    # Diagonal extension kernels are bandwidth-bound: tiny peak fractions.
    "DIMM": 0.10,
    "DIDIMM": 0.05,
    "DIGESV": 0.10,
    "DISYSV": 0.10,
    "DITRSV": 0.10,
    "DIDISV": 0.05,
    "DIINV": 0.05,
}

#: Half-saturation size per kernel: solves ramp up more slowly than products.
DEFAULT_SATURATION: dict[str, float] = {}
for _name in DEFAULT_KERNEL_EFFICIENCY:
    DEFAULT_SATURATION[_name] = 96.0 if _name.endswith(("SV", "INV")) else 48.0
DEFAULT_SATURATION["TRSM"] = 64.0


@dataclass(frozen=True)
class SimulatedMachine:
    """Analytic kernel-time oracle (the reproduction's hardware stand-in)."""

    peak_flops: float = 8.0e11  # ~14 cores x 2.6 GHz x 32 DP FLOP/cycle
    memory_bandwidth: float = 1.0e11  # bytes/s, for zero-FLOP kernels
    kernel_efficiency: Mapping[str, float] = field(
        default_factory=lambda: dict(DEFAULT_KERNEL_EFFICIENCY)
    )
    saturation: Mapping[str, float] = field(
        default_factory=lambda: dict(DEFAULT_SATURATION)
    )

    def _efficiency(self, kernel: str, s: np.ndarray | float):
        frac = self.kernel_efficiency.get(kernel, 0.5)
        half = self.saturation.get(kernel, 96.0)
        return frac * (s / (s + half))

    def performance(self, kernel: str, m, k, n):
        """Sustained FLOP/s of a kernel call with the given dimensions."""
        m = np.asarray(m, dtype=np.float64)
        k = np.asarray(k, dtype=np.float64)
        n = np.asarray(n, dtype=np.float64)
        s = (m * k * n) ** (1.0 / 3.0)
        return self.peak_flops * self._efficiency(kernel, s)

    def time_call(self, kernel: str, flops, m, k, n):
        """Execution time of one kernel call given its FLOP count and dims."""
        flops = np.asarray(flops, dtype=np.float64)
        if kernel in ("TRANSPOSE", "COPY"):
            m = np.asarray(m, dtype=np.float64)
            n = np.asarray(n, dtype=np.float64)
            return 16.0 * m * n / self.memory_bandwidth  # read + write
        return flops / self.performance(kernel, m, k, n)

    # -- variant-level helpers -------------------------------------------------

    def step_time_many(self, step, instances: np.ndarray) -> np.ndarray:
        """Vectorized execution time of one variant step over instances."""
        instances = np.asarray(instances, dtype=np.float64)
        m = instances[:, step.call_dims[0]]
        k = instances[:, step.call_dims[1]]
        n = instances[:, step.call_dims[2]]
        flops = np.zeros(instances.shape[0])
        for term in step.cost.terms:
            flops += float(term.coeff) * m**term.em * k**term.ek * n**term.en
        return self.time_call(step.kernel.name, flops, m, k, n)

    def fixup_time_many(self, fixup, instances: np.ndarray) -> np.ndarray:
        instances = np.asarray(instances, dtype=np.float64)
        d = instances[:, fixup.dim]
        flops = np.zeros(instances.shape[0])
        for term in fixup.cost.terms:
            flops += float(term.coeff) * d ** (term.em + term.ek + term.en)
        return self.time_call(fixup.kernel.name, flops, d, d, d)

    def variant_time_many(self, variant, instances: np.ndarray) -> np.ndarray:
        """True execution time of a variant on many instances."""
        instances = np.asarray(instances, dtype=np.float64)
        total = np.zeros(instances.shape[0])
        for step in variant.steps:
            total += self.step_time_many(step, instances)
        for fixup in variant.fixups:
            total += self.fixup_time_many(fixup, instances)
        return total

    def variant_time(self, variant, sizes: Sequence[int]) -> float:
        q = np.asarray([sizes], dtype=np.float64)
        return float(self.variant_time_many(variant, q)[0])

"""Feedback-directed cost estimation: calibrated FLOP/s from live traffic.

The dispatcher's default cost model is analytic FLOPs.  The paper's own
execution-time experiment (Section VII-B) shows why that is not enough:
kernel classes run at very different effective rates, so the FLOP-cheapest
variant is not always the fastest.  Production traffic measures those
rates for free — with tracing enabled, :meth:`Dispatcher.run` times every
kernel call into per-``(kernel, routine)`` histograms in the
:mod:`repro.obs` registry, and additionally records the observed
FLOP/s of each call (``runtime.kernel_rate``).

:class:`CalibratedEstimator` closes the loop:

* it maintains a thread-safe per-``(kernel, routine)`` table of effective
  FLOP/s, **seeded** with one uniform analytic rate — before any traffic,
  every kernel looks equally fast, so estimates are proportional to FLOPs
  and the estimator ranks variants exactly like the analytic model;
* :meth:`refresh` folds the registry histograms' windowed *medians* into
  the table with exponential decay, so the rates track the machine while
  staying robust to interrupt spikes (medians) and drift (decay);
* as a cost estimator it maps ``(variant, sizes)`` to estimated seconds —
  per-step FLOPs divided by the step kernel's calibrated rate — with the
  batched :meth:`cost_many` form the dispatcher's broadcast sweep uses;
* :meth:`snapshot` / :meth:`from_snapshot` serialize the learned table
  into the :class:`~repro.compiler.program.CompiledProgram` artifact's
  ``calibration`` section, so a warmed deployment ships its calibration
  and a fresh process dispatches with the learned rates — no warm-up.

Selection is plumbed through ``CompileOptions.cost_model``
(``"flops" | "calibrated"``), ``Dispatcher(cost_estimator=...)``, serve
request options, and the CLI ``--cost-model`` flag.  The dispatcher
additionally uses the estimator for *online re-selection*: when a memo
entry's measured replay time disagrees with the calibrated prediction —
or the calibrated sweep prices another variant cheaper — by a
configurable ratio, the entry is re-selected under the calibrated model
and the plan swapped (see ``Dispatcher._feedback``).
"""

from __future__ import annotations

import math
import threading
import time
from typing import TYPE_CHECKING, Any, Mapping, Optional, Sequence

import numpy as np

from repro.obs import get_registry
from repro.obs.registry import MetricsRegistry

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.compiler.variant import Variant

__all__ = [
    "CALIBRATION_FORMAT_VERSION",
    "KERNEL_RATE_METRIC",
    "CalibratedEstimator",
    "calibration_snapshot",
    "fixup_flops",
    "get_default_estimator",
    "step_flops",
]

#: Version of the serialized calibration payload (the artifact section).
CALIBRATION_FORMAT_VERSION = 1

#: Histogram the traced runtime feeds with observed per-call FLOP/s.
KERNEL_RATE_METRIC = "runtime.kernel_rate"

#: Uniform seed rate: with every kernel at the same FLOP/s, estimated
#: seconds are FLOPs times a constant — the calibrated estimator ranks
#: variants exactly like the analytic FLOP model until traffic arrives.
DEFAULT_SEED_FLOPS_PER_SECOND = 2.0e9

#: Weight of a fresh histogram median against the running rate (EMA).
DEFAULT_DECAY = 0.5

#: Seconds between automatic :meth:`CalibratedEstimator.refresh` pulls.
DEFAULT_REFRESH_INTERVAL = 1.0


def step_flops(step, sizes: Sequence[int]) -> float:
    """Analytic FLOPs of one variant step at a concrete size vector."""
    m = float(sizes[step.call_dims[0]])
    k = float(sizes[step.call_dims[1]])
    n = float(sizes[step.call_dims[2]])
    total = 0.0
    for term in step.cost.terms:
        total += float(term.coeff) * m**term.em * k**term.ek * n**term.en
    return total


def fixup_flops(fixup, sizes: Sequence[int]) -> float:
    """Analytic FLOPs of one final fix-up at a concrete size vector."""
    d = float(sizes[fixup.dim])
    total = 0.0
    for term in fixup.cost.terms:
        total += float(term.coeff) * d ** (term.em + term.ek + term.en)
    return total


class CalibratedEstimator:
    """Online per-kernel FLOP/s table, usable as a dispatcher cost estimator.

    Thread-safe: the table is guarded by a lock, reads go through an
    immutable per-kernel rate snapshot rebuilt on every :meth:`refresh`.
    Estimated costs are *seconds* (FLOPs / calibrated FLOP/s), summed over
    a variant's steps and fix-ups, so estimates from differently-warmed
    estimators stay comparable to wall-clock measurements.
    """

    #: Marker the dispatcher and artifact layer test with ``getattr`` —
    #: they must not import this module (and its package) eagerly.
    calibrated = True

    def __init__(
        self,
        seed_flops_per_second: float = DEFAULT_SEED_FLOPS_PER_SECOND,
        decay: float = DEFAULT_DECAY,
        refresh_interval: float = DEFAULT_REFRESH_INTERVAL,
        registry: Optional[MetricsRegistry] = None,
    ):
        if seed_flops_per_second <= 0:
            raise ValueError("seed_flops_per_second must be > 0")
        if not 0.0 < decay <= 1.0:
            raise ValueError(f"decay must be in (0, 1], got {decay}")
        if refresh_interval < 0:
            raise ValueError("refresh_interval must be >= 0")
        self.seed_flops_per_second = float(seed_flops_per_second)
        self.decay = float(decay)
        self.refresh_interval = float(refresh_interval)
        self._registry = registry
        self._lock = threading.Lock()
        #: (kernel, routine) -> {"flops_per_second", "samples"} — learned
        #: entries only; unmeasured kernels fall back to the seed rate.
        self._table: dict[tuple[str, str], dict[str, float]] = {}
        #: kernel -> sample-weighted rate, rebuilt on refresh (read lock-free
        #: on the estimation hot path; rebinding a dict is atomic).
        self._kernel_rates: dict[str, float] = {}
        self._next_refresh = 0.0
        self.refresh_count = 0
        self.updated_unix: float = 0.0

    # -- calibration ---------------------------------------------------------

    def _source_registry(self) -> MetricsRegistry:
        return self._registry if self._registry is not None else get_registry()

    def refresh(self) -> int:
        """Fold the registry's observed-rate medians into the table.

        Reads every ``runtime.kernel_rate{kernel,routine}`` histogram's
        windowed median and merges it into the running rate with
        exponential decay (``decay`` weight on the fresh median).  Empty
        windows contribute nothing — :meth:`Histogram.median` returns
        ``None`` before the first observation, never a fabricated zero
        rate.  Returns the number of ``(kernel, routine)`` entries updated.
        """
        updated = 0
        for metric in self._source_registry().metrics():
            if metric.name != KERNEL_RATE_METRIC or metric.kind != "histogram":
                continue
            observed = metric.median(default=None)
            if observed is None or not math.isfinite(observed) or observed <= 0:
                continue
            kernel = metric.labels.get("kernel", "")
            routine = metric.labels.get("routine", "")
            samples = metric.count
            with self._lock:
                entry = self._table.get((kernel, routine))
                if entry is None:
                    self._table[(kernel, routine)] = {
                        "flops_per_second": float(observed),
                        "samples": float(samples),
                    }
                else:
                    entry["flops_per_second"] += self.decay * (
                        float(observed) - entry["flops_per_second"]
                    )
                    entry["samples"] = float(samples)
            updated += 1
        with self._lock:
            self.refresh_count += 1
            self.updated_unix = time.time()
            self._rebuild_kernel_rates_locked()
            self._next_refresh = time.monotonic() + self.refresh_interval
        return updated

    def maybe_refresh(self) -> bool:
        """Throttled :meth:`refresh`: at most once per ``refresh_interval``."""
        if time.monotonic() < self._next_refresh:
            return False
        self.refresh()
        return True

    def _rebuild_kernel_rates_locked(self) -> None:
        totals: dict[str, tuple[float, float]] = {}
        for (kernel, _), entry in self._table.items():
            weight = max(1.0, entry["samples"])
            acc, wsum = totals.get(kernel, (0.0, 0.0))
            totals[kernel] = (
                acc + weight * entry["flops_per_second"],
                wsum + weight,
            )
        self._kernel_rates = {
            kernel: acc / wsum for kernel, (acc, wsum) in totals.items() if wsum
        }

    def rate_for(self, kernel: str) -> float:
        """Calibrated FLOP/s for a kernel class (seed rate until measured)."""
        return self._kernel_rates.get(kernel, self.seed_flops_per_second)

    # -- estimation ----------------------------------------------------------

    def __call__(self, variant: "Variant", sizes: Sequence[int]) -> float:
        """Estimated execution seconds of a variant at a size vector."""
        self.maybe_refresh()
        rates = self._kernel_rates
        seed = self.seed_flops_per_second
        total = 0.0
        for step in variant.steps:
            total += step_flops(step, sizes) / rates.get(
                step.kernel.name, seed
            )
        for fixup in variant.fixups:
            total += fixup_flops(fixup, sizes) / rates.get(
                fixup.kernel.name, seed
            )
        return total

    def cost_many(self, variant: "Variant", instances: np.ndarray) -> np.ndarray:
        """Batched estimate: seconds of one variant on ``(count, n+1)`` sizes.

        The dispatcher's broadcast cost sweep calls this per pool variant
        instead of the scalar path — one numpy pass per step rather than a
        Python loop per ``(variant, instance)`` pair.
        """
        self.maybe_refresh()
        instances = np.asarray(instances, dtype=np.float64)
        rates = self._kernel_rates
        seed = self.seed_flops_per_second
        total = np.zeros(instances.shape[0])
        for step in variant.steps:
            m = instances[:, step.call_dims[0]]
            k = instances[:, step.call_dims[1]]
            n = instances[:, step.call_dims[2]]
            flops = np.zeros(instances.shape[0])
            for term in step.cost.terms:
                flops += float(term.coeff) * m**term.em * k**term.ek * n**term.en
            total += flops / rates.get(step.kernel.name, seed)
        for fixup in variant.fixups:
            d = instances[:, fixup.dim]
            flops = np.zeros(instances.shape[0])
            for term in fixup.cost.terms:
                flops += float(term.coeff) * d ** (term.em + term.ek + term.en)
            total += flops / rates.get(fixup.kernel.name, seed)
        return total

    # -- introspection and serialization -------------------------------------

    def stats(self) -> dict[str, Any]:
        """JSON-clean calibration state (the ``calibration`` stats scope)."""
        with self._lock:
            entries = len(self._table)
            samples = sum(int(e["samples"]) for e in self._table.values())
            updated = self.updated_unix
            refreshes = self.refresh_count
        return {
            "entries": entries,
            "samples": samples,
            "refreshes": refreshes,
            "updated_unix": updated,
            "age_seconds": (
                max(0.0, time.time() - updated) if updated else None
            ),
            "seed_flops_per_second": self.seed_flops_per_second,
        }

    def snapshot(self) -> dict[str, Any]:
        """The serializable calibration section (empty dict = nothing learned).

        Ships only *learned* state: an estimator still at its uniform seed
        rates snapshots to ``{}``, so artifacts without traffic carry no
        calibration section at all.
        """
        with self._lock:
            if not self._table:
                return {}
            table = {
                f"{kernel}|{routine}": {
                    "flops_per_second": entry["flops_per_second"],
                    "samples": int(entry["samples"]),
                }
                for (kernel, routine), entry in sorted(self._table.items())
            }
            return {
                "format_version": CALIBRATION_FORMAT_VERSION,
                "seed_flops_per_second": self.seed_flops_per_second,
                "decay": self.decay,
                "updated_unix": self.updated_unix,
                "refresh_count": self.refresh_count,
                "table": table,
            }

    @classmethod
    def from_snapshot(
        cls,
        payload: Mapping[str, Any],
        registry: Optional[MetricsRegistry] = None,
    ) -> "CalibratedEstimator":
        """Rebuild an estimator from an artifact's ``calibration`` section.

        Tolerant by design — unknown keys are ignored and a missing table
        yields a seed-rate estimator — so older payload revisions keep
        loading.  The rebuilt estimator stays *live*: it keeps refreshing
        from the local registry, folding local traffic into the shipped
        rates.
        """
        estimator = cls(
            seed_flops_per_second=float(
                payload.get("seed_flops_per_second")
                or DEFAULT_SEED_FLOPS_PER_SECOND
            ),
            decay=float(payload.get("decay") or DEFAULT_DECAY),
            registry=registry,
        )
        table = payload.get("table") or {}
        if isinstance(table, Mapping):
            for key, entry in table.items():
                if not isinstance(entry, Mapping):
                    continue
                rate = float(entry.get("flops_per_second") or 0.0)
                if rate <= 0 or not math.isfinite(rate):
                    continue
                kernel, _, routine = str(key).partition("|")
                estimator._table[(kernel, routine)] = {
                    "flops_per_second": rate,
                    "samples": float(entry.get("samples") or 0.0),
                }
        estimator.refresh_count = int(payload.get("refresh_count") or 0)
        estimator.updated_unix = float(payload.get("updated_unix") or 0.0)
        with estimator._lock:
            estimator._rebuild_kernel_rates_locked()
        return estimator

    def __repr__(self) -> str:
        return (
            f"<CalibratedEstimator entries={len(self._kernel_rates)} "
            f"refreshes={self.refresh_count}>"
        )


# ---------------------------------------------------------------------------
# The process-default estimator: what `cost_model="calibrated"` resolves to
# for freshly-compiled programs, so every dispatcher in the process shares
# one learned table (artifacts loaded *with* a shipped table get their own
# private estimator seeded from it instead).
# ---------------------------------------------------------------------------

_DEFAULT: Optional[CalibratedEstimator] = None
_DEFAULT_LOCK = threading.Lock()


def get_default_estimator() -> CalibratedEstimator:
    """The process-wide shared :class:`CalibratedEstimator` (lazy)."""
    global _DEFAULT
    if _DEFAULT is None:
        with _DEFAULT_LOCK:
            if _DEFAULT is None:
                _DEFAULT = CalibratedEstimator()
    return _DEFAULT


def calibration_snapshot() -> dict[str, Any]:
    """The ``calibration`` collector scope of the global stats snapshot."""
    if _DEFAULT is None:
        return {"entries": 0, "samples": 0, "refreshes": 0}
    return _DEFAULT.stats()


get_registry().register_collector("calibration", calibration_snapshot)

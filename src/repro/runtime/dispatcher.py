"""The run-time dispatch function (paper Fig. 1), as a memoizing runtime.

At run time, the application calls the dispatch function with concrete
matrices.  The dispatcher evaluates the cost function of every generated
variant on the observed sizes and passes control to the cheapest one.

The cost function is pluggable: by default it is the FLOP cost; the
execution-time experiment plugs in performance-model estimates instead
(Section VII-B).

What makes this a *runtime* rather than a per-call recomputation:

* the flattened cost-term stack of the variant pool is built once and
  keyed on the **identity** of the pool (so in-place replacement of the
  list, even at the same length, rebuilds it);
* every dispatch decision is memoized in a bounded, LRU-evicted map from
  the observed size vector to ``(variant, cost, ExecutionPlan)`` —
  a service answering repeated instances of the same sizes pays one cost
  sweep and one plan compilation, then amortized O(1) per call;
* executing through the memo replays a compiled
  :class:`~repro.runtime.plan.ExecutionPlan`: kernel implementations,
  call configurations, and buffer slots are pre-resolved, and operand
  shapes are validated exactly once (by size inference), not re-checked
  per step or re-inferred per call.

The memo is invalidated by reassigning :attr:`Dispatcher.variants`,
mutating the variant list in place, or swapping
:attr:`Dispatcher.cost_estimator`.  Memo bookkeeping is guarded by a
lock, so one dispatcher may serve many threads (plans themselves are
stateless and replay concurrently).

Dispatch can additionally be *feedback-directed*: with ``reselect_ratio``
set, every memoized decision tracks its measured replay time (an EMA),
and at exponentially-backed-off checkpoints the dispatcher refreshes the
calibrated model (:class:`~repro.perfmodel.feedback.CalibratedEstimator`)
and re-sweeps the pool under it.  The entry's plan is swapped in place
when the calibrated winner differs and the measurement disagrees with
the prediction — or the calibrated winner undercuts the current variant
— by at least the ratio.  A selection the analytic FLOP model got wrong
on this machine thereby corrects itself from live traffic, while the hot
path stays amortized O(1) (one integer compare per call between
checkpoints; sweeps are logarithmic in an entry's executions).
"""

from __future__ import annotations

import threading
import time
import weakref
from collections import OrderedDict
from typing import (
    TYPE_CHECKING,
    Callable,
    NamedTuple,
    Optional,
    Sequence,
    Union,
)

import numpy as np

from repro.errors import DispatchError
from repro.ir.chain import Chain
from repro.obs import get_registry
from repro.obs import trace as obs_trace
from repro.runtime.backends import (
    BACKEND_NAMES,
    FALLBACK_ROUTINE,
    Backend,
    cemit_available,
)
from repro.runtime.executor import SizeInferencer, random_instance_arrays
from repro.runtime.plan import ExecutionPlan, compile_plan

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.compiler.variant import Variant

#: Maps (variant, sizes) to an estimated cost; lower is better.
CostEstimator = Callable[["Variant", Sequence[int]], float]

#: Default bound on memoized size vectors per dispatcher.
DEFAULT_MEMO_CAPACITY = 512

#: Replays per backend when ``auto`` micro-benchmarks a memo entry.
AUTO_BENCH_REPS = 2

#: Idle :class:`~repro.runtime.plan.PlanArena` objects kept per memo
#: entry — bounds the buffer memory pooled for concurrent
#: ``run(reuse_buffers=True)`` replays of one (variant, sizes) decision.
ARENA_POOL_CAP = 8

#: Executions of a memo entry before its first measured-vs-predicted
#: disagreement check (subsequent checks back off exponentially).
DEFAULT_RESELECT_MIN_EXECUTIONS = 8

#: EMA weight of the freshest measured replay time in an entry's estimate.
MEASURED_EMA_WEIGHT = 0.3


def flop_estimator(variant: Variant, sizes: Sequence[int]) -> float:
    """The default cost estimator: analytic FLOP count."""
    return variant.flop_cost(sizes)


#: Live dispatchers, aggregated by the process-wide ``runtime`` collector.
_DISPATCHERS: "weakref.WeakSet[Dispatcher]" = weakref.WeakSet()
_DISPATCHERS_LOCK = threading.Lock()


def runtime_snapshot() -> dict[str, object]:
    """Aggregate memo/execution state across every live dispatcher.

    Mounted on the global registry as the ``runtime`` collector scope, so
    one ``stats`` call sees hit rates and per-backend execution counts for
    the whole process without enumerating dispatchers by hand.
    """
    with _DISPATCHERS_LOCK:
        dispatchers = list(_DISPATCHERS)
    agg: dict[str, object] = {
        "dispatchers": len(dispatchers),
        "memo_entries": 0,
        "memo_hits": 0,
        "memo_misses": 0,
        "memo_evictions": 0,
        "reselect_checks": 0,
        "reselections": 0,
        "executions": {},
        "auto_wins": {},
        "last_execute_seconds": None,
    }
    executions: dict[str, int] = agg["executions"]  # type: ignore[assignment]
    auto_wins: dict[str, int] = agg["auto_wins"]  # type: ignore[assignment]
    latest = -1.0
    for dispatcher in dispatchers:
        stats = dispatcher.memo_stats()
        agg["memo_entries"] += stats["entries"]
        agg["memo_hits"] += stats["hits"]
        agg["memo_misses"] += stats["misses"]
        agg["memo_evictions"] += stats["evictions"]
        agg["reselect_checks"] += stats["reselect_checks"]
        agg["reselections"] += stats["reselections"]
        for name, count in stats["executions"].items():
            executions[name] = executions.get(name, 0) + count
        for name, count in stats["auto_wins"].items():
            auto_wins[name] = auto_wins.get(name, 0) + count
        stamp = dispatcher.last_execute_at
        if stamp is not None and stamp > latest:
            latest = stamp
            agg["last_execute_seconds"] = stats["last_execute_seconds"]
    return agg


get_registry().register_collector("runtime", runtime_snapshot)


class DispatchOutcome(NamedTuple):
    """Everything one dispatched execution produced (see :meth:`Dispatcher.run`)."""

    sizes: tuple[int, ...]
    variant: Variant
    cost: float
    result: np.ndarray


class _MemoEntry:
    """One memoized dispatch decision; the plan is compiled on first use.

    Holds the winning variant *object* (not an index into the mutable
    pool), so a stale entry can never index out of a reassigned list.
    """

    __slots__ = (
        "variant",
        "cost",
        "plan",
        "backend",
        "bench",
        "kernel_hists",
        "arenas",
        "executions",
        "measured_ema",
        "next_check",
    )

    def __init__(
        self, variant: "Variant", cost: float, plan: Optional[ExecutionPlan]
    ):
        self.variant = variant
        self.cost = cost
        self.plan = plan
        #: Concrete backend the compiled plan runs on (set with the plan).
        self.backend: Optional[str] = None
        #: ``auto`` only: measured seconds per backend for this entry.
        self.bench: Optional[dict[str, float]] = None
        #: Traced-replay observers, built lazily on the first traced
        #: execution of the plan: one ``(observe_seconds, observe_rate,
        #: step_flops)`` triple per plan step.
        self.kernel_hists: Optional[
            tuple[tuple[Callable[[float], None], Callable[[float], None], float], ...]
        ] = None
        #: Idle intermediate-buffer arenas for the compiled plan
        #: (:class:`~repro.runtime.plan.PlanArena`).  Checked out one per
        #: in-flight ``run(reuse_buffers=True)`` replay under the memo
        #: lock — an arena never backs two replays at once — and
        #: invalidated together with the plan they were shaped for.
        self.arenas: list = []
        #: Feedback bookkeeping (re-selection): replays of this entry,
        #: EMA of measured replay seconds, next disagreement checkpoint.
        self.executions = 0
        self.measured_ema: Optional[float] = None
        self.next_check = 0


class Dispatcher:
    """Multi-versioned evaluator for one chain shape.

    This object plays the role of the generated dispatch function: it owns
    the ``k`` generated variants (with their cost functions) and, per call,
    selects and executes the best variant for the observed matrix sizes.
    Repeated instances of the same sizes bypass the cost sweep entirely
    through the size-keyed memo (see the module docstring).

    ``memo_capacity`` bounds the memo (LRU eviction); ``0`` disables
    memoization, restoring a full cost sweep per call.

    ``backend`` is a registered strategy name (``reference``/``blas``/
    ``c``/``auto``) or a concrete :class:`~repro.runtime.backends.Backend`
    instance (synthetic machines in benchmarks, custom lowerings).

    ``reselect_ratio`` enables feedback-directed re-selection (module
    docstring): a memo entry whose measured replay time disagrees with
    the calibrated prediction by at least this factor (e.g. ``2.0``) —
    or which the calibrated sweep undercuts by it — is re-selected under
    ``calibration`` — by default the process-wide
    :func:`~repro.perfmodel.feedback.get_default_estimator`, or the
    dispatcher's own cost estimator when that is already calibrated.
    Checks start after ``reselect_min_executions`` replays of an entry
    and back off exponentially.
    """

    def __init__(
        self,
        chain: Chain,
        variants: Sequence[Variant],
        cost_estimator: CostEstimator = flop_estimator,
        memo_capacity: int = DEFAULT_MEMO_CAPACITY,
        backend: Union[str, Backend] = "reference",
        calibration: Optional[CostEstimator] = None,
        reselect_ratio: Optional[float] = None,
        reselect_min_executions: int = DEFAULT_RESELECT_MIN_EXECUTIONS,
    ):
        if not variants:
            raise DispatchError("a dispatcher needs at least one variant")
        for variant in variants:
            if variant.chain is not chain and variant.chain != chain:
                raise DispatchError(
                    f"variant {variant.name!r} was built for a different chain"
                )
        if memo_capacity < 0:
            raise DispatchError("memo_capacity must be >= 0")
        if reselect_ratio is not None and reselect_ratio <= 1.0:
            raise DispatchError("reselect_ratio must be > 1.0")
        if reselect_min_executions < 1:
            raise DispatchError("reselect_min_executions must be >= 1")
        self.chain = chain
        self.memo_capacity = memo_capacity
        self._infer = SizeInferencer(chain)
        self.memo_hits = 0  #: dispatch decisions answered from the memo
        self.memo_misses = 0  #: dispatch decisions that paid a cost sweep
        self.memo_evictions = 0  #: memo entries dropped by the LRU bound
        #: executed instances per concrete plan backend (observability for
        #: the ``auto`` strategy; see :meth:`memo_stats`)
        self.backend_executions: dict[str, int] = {}
        #: ``auto`` tournament verdicts per winning backend — how often
        #: each concrete lowering won a memo entry's micro-benchmark
        self.auto_wins: dict[str, int] = {}
        #: wall-clock seconds of the most recent run()/execute_many replay
        self.last_execute_seconds: Optional[float] = None
        #: monotonic stamp of that replay (lets aggregators order
        #: "most recent" across dispatchers); None until the first one
        self.last_execute_at: Optional[float] = None
        self._memo: OrderedDict[tuple[int, ...], _MemoEntry] = OrderedDict()
        self._memo_lock = threading.Lock()
        self._pool_snapshot: Optional[tuple[Variant, ...]] = None
        self._term_stack = None
        self.variants = list(variants)  # via the setter: resets the caches
        self._cost_estimator = cost_estimator
        self._backend = self._validate_backend(backend)
        self.reselect_checks = 0  #: disagreement checkpoints evaluated
        self.reselections = 0  #: memo entries swapped by feedback
        self._reselect_ratio = (
            float(reselect_ratio) if reselect_ratio is not None else None
        )
        self._reselect_min = int(reselect_min_executions)
        if calibration is None and getattr(cost_estimator, "calibrated", False):
            calibration = cost_estimator
        if calibration is None and self._reselect_ratio is not None:
            from repro.perfmodel.feedback import get_default_estimator

            calibration = get_default_estimator()
        self._calibration = calibration
        #: Per-backend execute-time Histogram cache: the registry lookup
        #: (string formatting + dict get under a lock) is too slow for the
        #: per-call hot path, the bound observe() is not.
        self._exec_hists: dict[str, Callable[[float], None]] = {}
        with _DISPATCHERS_LOCK:
            _DISPATCHERS.add(self)

    # -- pool and estimator bookkeeping --------------------------------------

    @property
    def variants(self) -> list["Variant"]:
        return self._variants

    @variants.setter
    def variants(self, value: Sequence["Variant"]) -> None:
        self._variants = list(value)
        self._invalidate()

    @property
    def cost_estimator(self) -> CostEstimator:
        return self._cost_estimator

    @cost_estimator.setter
    def cost_estimator(self, value: CostEstimator) -> None:
        # Memoized decisions embed the old estimator's costs and winners;
        # swapping the estimator (e.g. FLOPs -> performance model) must
        # drop them.  The term stack only serves the FLOP fast path and
        # stays valid for the same pool.
        self._cost_estimator = value
        if getattr(value, "calibrated", False):
            self._calibration = value
        with self._memo_lock:
            self._memo.clear()

    @property
    def calibration(self) -> Optional[CostEstimator]:
        """The estimator feedback re-selection sweeps under (if enabled)."""
        return self._calibration

    @staticmethod
    def _validate_backend(
        backend: Union[str, Backend]
    ) -> Union[str, Backend]:
        if isinstance(backend, Backend):
            return backend
        if backend not in BACKEND_NAMES:
            raise DispatchError(
                f"unknown execution backend {backend!r}; "
                f"choose one of {BACKEND_NAMES}"
            )
        return backend

    @property
    def backend(self) -> Union[str, Backend]:
        """The execution-backend strategy (name or Backend instance)."""
        return self._backend

    @property
    def _backend_label(self) -> str:
        """The backend's display/metric-label name (Backend instances
        label by their ``name`` attribute)."""
        backend = self._backend
        return backend if isinstance(backend, str) else backend.name

    @backend.setter
    def backend(self, value: Union[str, Backend]) -> None:
        value = self._validate_backend(value)
        if value == self._backend:
            return
        self._backend = value
        # Memoized *decisions* (variant + cost) are backend-independent;
        # only the compiled plans and measurements are stale.  Keep the
        # selections warm and recompile plans lazily under the new backend.
        with self._memo_lock:
            for entry in self._memo.values():
                entry.plan = None
                entry.backend = None
                entry.bench = None
                entry.kernel_hists = None
                entry.arenas = []

    def _invalidate(self) -> None:
        with self._memo_lock:
            self._pool_snapshot = tuple(self._variants)
            self._term_stack = None
            self._memo.clear()

    def _sync_pool(self) -> tuple["Variant", ...]:
        """The coherent pool snapshot, invalidating stale caches first.

        Reassigning ``self.variants`` resets eagerly (the setter); this
        guard additionally catches *in-place* mutation of the list —
        including same-length replacement, which a length check would
        miss — by comparing element identity against the snapshot the
        caches were built for.  Callers evaluate and index the returned
        snapshot tuple (never ``self._variants`` directly), and every
        cache write is gated on the snapshot still being current, so a
        concurrent pool swap can at worst waste a sweep — it can never
        persist a decision computed against the old pool.
        """
        pool = self._variants
        snapshot = self._pool_snapshot
        if (
            snapshot is None
            or len(snapshot) != len(pool)
            or any(a is not b for a, b in zip(pool, snapshot))
        ):
            self._invalidate()
            snapshot = self._pool_snapshot
        return snapshot

    # -- cost evaluation ------------------------------------------------------

    def cost_matrix(self, instances, *, validate: bool = True) -> np.ndarray:
        """Estimated costs of every variant on every instance, batched.

        ``instances`` is one size vector or an ``(count, n+1)`` array; the
        result has shape ``(num_variants, count)``.  With ``validate``
        (the default) every row is checked against the chain; trusted
        callers that already validated their instances — size inference,
        the serve layer — pass ``validate=False`` to skip the per-row
        Python loop (a cheap width check still applies).  Under the
        default FLOP estimator the whole matrix is computed with the
        :func:`~repro.compiler.selection.flatten_cost_terms` broadcast
        sweep (one numpy pass over all variants and instances, no
        per-variant Python loop); a custom estimator falls back to
        per-pair evaluation.
        """
        validated = self._as_instance_matrix(instances, validate)
        snapshot = self._sync_pool()
        return self._evaluate_costs(snapshot, validated)

    def _as_instance_matrix(self, instances, validate: bool) -> np.ndarray:
        """Normalize one size vector or a batch to a validated 2-D array."""
        instances = np.asarray(instances)
        if instances.ndim == 1:
            instances = instances[None, :]
        if instances.ndim != 2:
            raise DispatchError(
                f"instances must be a size vector or a 2-D (count, n+1) "
                f"array, got shape {instances.shape}"
            )
        if validate:
            return np.array(
                [
                    self.chain.validate_sizes([int(x) for x in row])
                    for row in instances
                ],
                dtype=np.float64,
            ).reshape(instances.shape[0], self.chain.n + 1)
        if instances.shape[1] != self.chain.n + 1:
            raise DispatchError(
                f"instances have {instances.shape[1]} sizes, expected "
                f"{self.chain.n + 1}"
            )
        return np.asarray(instances, dtype=np.float64)

    def _evaluate_costs(
        self, snapshot: tuple["Variant", ...], validated: np.ndarray
    ) -> np.ndarray:
        """Costs of one coherent pool snapshot on pre-validated instances.

        The term stack is cached *paired with its snapshot*, and the cache
        write is gated on the snapshot still being current — so this never
        evaluates a stack built from a different pool than the one the
        caller will index.
        """
        if self._cost_estimator is flop_estimator:
            from repro.compiler.selection import (
                evaluate_cost_terms,
                flatten_cost_terms,
            )

            cached = self._term_stack
            if cached is not None and cached[0] is snapshot:
                stack = cached[1]
            else:
                stack = flatten_cost_terms(snapshot, self.chain.n + 1)
                with self._memo_lock:
                    if self._pool_snapshot is snapshot:
                        self._term_stack = (snapshot, stack)
            return evaluate_cost_terms(stack, len(snapshot), validated)
        cost_many = getattr(self._cost_estimator, "cost_many", None)
        if cost_many is not None:
            # Batched estimators (CalibratedEstimator) vectorize over
            # instances — one numpy pass per (variant, step) instead of a
            # Python call per (variant, instance) pair.
            return np.stack(
                [
                    np.asarray(cost_many(v, validated), dtype=np.float64)
                    for v in snapshot
                ]
            )
        return np.array(
            [
                [
                    float(self._cost_estimator(v, tuple(int(x) for x in row)))
                    for row in validated
                ]
                for v in snapshot
            ],
            dtype=np.float64,
        ).reshape(len(snapshot), validated.shape[0])

    # -- selection ------------------------------------------------------------

    def select_many(
        self, instances, *, validate: bool = True
    ) -> list[tuple[Variant, float]]:
        """Batched dispatch: the winning (variant, cost) per instance.

        One broadcast cost sweep covers all instances; ``argmin`` keeps the
        documented tie-break (first occurrence of the minimum, i.e. the
        earliest variant in ``self.variants`` order).  ``validate=False``
        skips per-row instance validation for pre-validated callers.
        """
        validated = self._as_instance_matrix(instances, validate)
        snapshot = self._sync_pool()
        costs = self._evaluate_costs(snapshot, validated)
        winners = costs.argmin(axis=0)
        return [
            (snapshot[v], float(costs[v, i]))
            for i, v in enumerate(winners)
        ]

    def _lookup(self, q: tuple[int, ...], count: bool = True) -> Optional[_MemoEntry]:
        with self._memo_lock:
            entry = self._memo.get(q)
            if entry is not None:
                self._memo.move_to_end(q)
                if count:
                    self.memo_hits += 1
            return entry

    def _store(
        self,
        q: tuple[int, ...],
        entry: _MemoEntry,
        snapshot: tuple["Variant", ...],
        estimator: CostEstimator,
    ) -> None:
        if self.memo_capacity <= 0:
            return
        with self._memo_lock:
            if (
                self._pool_snapshot is not snapshot
                or self._cost_estimator is not estimator
            ):
                # The pool or the estimator changed while we swept: the
                # decision is stale, drop it rather than poison the memo
                # that the concurrent swap just cleared.
                return
            self._memo[q] = entry
            while len(self._memo) > self.memo_capacity:
                self._memo.popitem(last=False)
                self.memo_evictions += 1

    def _select_entry(self, q: tuple[int, ...]) -> _MemoEntry:
        """The memoized dispatch decision for a validated size vector."""
        snapshot = self._sync_pool()
        entry = self._lookup(q)
        if entry is None:
            estimator = self._cost_estimator
            with self._memo_lock:
                self.memo_misses += 1
            costs = self._evaluate_costs(
                snapshot, np.asarray(q, dtype=np.float64)[None, :]
            )
            index = int(costs[:, 0].argmin())
            entry = _MemoEntry(snapshot[index], float(costs[index, 0]), None)
            self._store(q, entry, snapshot, estimator)
        return entry

    def select(self, sizes: Sequence[int]) -> tuple[Variant, float]:
        """The best variant and its estimated cost for an instance.

        Tie-break: when several variants share the minimum estimated cost,
        the *earliest* in ``self.variants`` order wins (``argmin`` returns
        the first occurrence of the minimum).  That order is itself
        deterministic — Theorem 2 emits representatives in equivalence-
        class order, and Algorithm 1 appends expansion picks after them —
        so dispatch is stable run-to-run and process-to-process, which the
        serving layer relies on for reproducible answers.  The memo keeps
        the first decision per size vector, so warm answers are the same
        decision, not merely an equal one.
        """
        q = self.chain.validate_sizes(sizes)
        entry = self._select_entry(q)
        return entry.variant, entry.cost

    def plan_for(
        self, sizes: Sequence[int], *, validate: bool = True
    ) -> tuple[Variant, float, ExecutionPlan]:
        """The memoized ``(variant, cost, plan)`` for an instance.

        The plan is compiled on the first request for a size vector and
        replayed from the memo afterwards.
        """
        q = (
            self.chain.validate_sizes(sizes)
            if validate
            else tuple(int(s) for s in sizes)
        )
        entry = self._select_entry(q)
        return entry.variant, entry.cost, self._entry_plan(entry, q)

    def _entry_plan(self, entry: _MemoEntry, q: tuple[int, ...]) -> ExecutionPlan:
        """The entry's compiled plan, lowering it through the backend
        strategy on first use (``auto`` micro-benchmarks here, once per
        memo entry)."""
        plan = entry.plan
        if plan is None:
            if self._backend == "auto":
                plan = self._auto_plan(entry, q)
            else:
                plan = compile_plan(entry.variant, q, backend=self._backend)
            entry.backend = plan.backend
            entry.plan = plan
        return plan

    def _auto_plan(self, entry: _MemoEntry, q: tuple[int, ...]) -> ExecutionPlan:
        """Measure every concrete lowering of this entry, keep the winner.

        The micro-benchmark replays each lowered plan ``AUTO_BENCH_REPS``
        times on one synthetic instance and takes the best time; the cost
        is paid once per ``(variant, sizes)`` memo entry and the verdict
        is cached alongside the plan (:attr:`_MemoEntry.bench`, with the
        per-backend win tallied in :attr:`auto_wins`).  When the blas
        lowering is pure fallback the plans are identical callables, so
        reference wins without measuring.  The ``c`` lowering joins the
        tournament only when the host can actually emit native plans
        *and* this plan did not fall back (a fallen-back c plan is the
        blas plan with extra codegen attempts).
        """
        ref_plan = compile_plan(entry.variant, q, backend="reference")
        blas_plan = compile_plan(entry.variant, q, backend="blas")
        if not blas_plan.step_routines or all(
            routine == FALLBACK_ROUTINE for routine in blas_plan.step_routines
        ):
            self._record_auto_win("reference")
            return ref_plan
        candidates = {"reference": ref_plan, "blas": blas_plan}
        if cemit_available():
            c_plan = compile_plan(entry.variant, q, backend="c")
            if c_plan.backend == "c":
                candidates["c"] = c_plan
        arrays = random_instance_arrays(
            entry.variant.chain, q, np.random.default_rng(0)
        )
        bench: dict[str, float] = {}
        for name, plan in candidates.items():
            best = float("inf")
            for _ in range(AUTO_BENCH_REPS):
                start = time.perf_counter()
                plan.replay(list(arrays))
                best = min(best, time.perf_counter() - start)
            bench[name] = best
        winner = min(bench, key=bench.get)
        entry.bench = bench
        self._record_auto_win(winner)
        return candidates[winner]

    def _record_auto_win(self, name: str) -> None:
        with self._memo_lock:
            self.auto_wins[name] = self.auto_wins.get(name, 0) + 1

    def costs(self, sizes: Sequence[int]) -> list[tuple[str, float]]:
        """Estimated cost of every variant (for inspection/debugging)."""
        matrix = self.cost_matrix([sizes])
        return [
            (v.name or str(i), float(matrix[i, 0]))
            for i, v in enumerate(self.variants)
        ]

    # -- execution ------------------------------------------------------------

    def _kernel_observers(
        self, entry: _MemoEntry, plan: ExecutionPlan
    ) -> tuple[tuple[Callable[[float], None], Callable[[float], None], float], ...]:
        """The entry's per-step histogram observers, built on first traced
        replay and cached on the memo entry (invalidated with the plan).

        Each step gets a ``(observe_seconds, observe_rate, flops)`` triple:
        the raw duration histogram plus the observed-FLOP/s histogram the
        calibrated cost model refreshes from — the step's analytic FLOPs
        are computed once here (cold path), so the traced hot loop pays
        one division per step to report a rate.
        """
        observers = entry.kernel_hists
        if observers is None:
            from repro.perfmodel.feedback import KERNEL_RATE_METRIC, step_flops

            registry = get_registry()
            observers = tuple(
                (
                    registry.histogram(
                        "runtime.kernel_seconds",
                        kernel=step.kernel.name,
                        routine=routine,
                    ).observe,
                    registry.histogram(
                        KERNEL_RATE_METRIC,
                        kernel=step.kernel.name,
                        routine=routine,
                    ).observe,
                    step_flops(step, plan.sizes),
                )
                for step, routine in zip(
                    plan.variant.steps, plan.step_routines
                )
            )
            entry.kernel_hists = observers
        return observers

    def _observe_execution(self, backend: str, elapsed: float) -> None:
        """Feed the always-on per-backend execute-time histogram.

        One dict get + one bound observe per call (the raw material for
        the feedback-directed cost model), cheap enough to stay on even
        with tracing off.
        """
        observe = self._exec_hists.get(backend)
        if observe is None:
            observe = get_registry().histogram(
                "runtime.execute_seconds", backend=backend
            ).observe
            self._exec_hists[backend] = observe
        observe(elapsed)

    def _checkout_arena(self, entry: _MemoEntry, plan: ExecutionPlan):
        """An idle arena for this plan, or ``None`` (cold plan / no gain)."""
        with self._memo_lock:
            if entry.arenas:
                return entry.arenas.pop()
        return plan.new_arena()

    def _release_arena(self, entry: _MemoEntry, plan: ExecutionPlan, arena) -> None:
        """Return a checked-out arena to the entry's idle pool.

        Dropped (garbage-collected) instead when the plan was invalidated
        mid-replay — the arena's buffer shapes belong to the old plan —
        or when the pool already holds enough for the realistic replay
        concurrency.
        """
        with self._memo_lock:
            if entry.plan is plan and len(entry.arenas) < ARENA_POOL_CAP:
                entry.arenas.append(arena)

    def run(
        self,
        arrays: Sequence[np.ndarray],
        *,
        out: Optional[np.ndarray] = None,
        reuse_buffers: bool = False,
    ) -> DispatchOutcome:
        """Dispatch and execute one instance; returns the full outcome.

        Sizes are inferred (and thereby validated) exactly once; the
        memoized plan replays without re-inferring or re-checking shapes.
        With tracing enabled, the replay additionally times every kernel
        call into per-``(kernel, routine)`` histograms and emits a
        ``runtime.run`` span; disabled, the only extra work over the plain
        replay is one histogram observe of the already-measured elapsed.

        ``reuse_buffers=True`` runs warm replays on pooled intermediate
        buffers (:class:`~repro.runtime.plan.PlanArena`, checked out per
        replay so concurrency stays safe): the first replay of a plan
        runs normally and records its buffer shapes, every later one
        skips the per-step ``np.empty`` calls.  ``out`` receives the
        result in a caller-owned buffer (shape ``plan.result_shape``,
        must not alias an operand) — together they make a warm replay
        allocation-free.  Both default off; the default call is
        byte-for-byte the historical fast path.
        """
        values = [np.asarray(a, dtype=np.float64) for a in arrays]
        sizes = self._infer.infer(values)
        entry = self._select_entry(sizes)
        plan = self._entry_plan(entry, sizes)
        arena = None
        if reuse_buffers and not obs_trace._enabled:
            arena = self._checkout_arena(entry, plan)
        if not obs_trace._enabled:  # module flag: zero-allocation fast path
            start = time.perf_counter()
            if arena is None and out is None:
                result = plan.replay(values)
            else:
                result = plan.replay(values, arena, out)
            elapsed = time.perf_counter() - start
            if reuse_buffers:
                if arena is not None:
                    self._release_arena(entry, plan, arena)
                else:
                    # Cold plan: remember the step shapes this replay
                    # produced so the next one can build an arena.
                    plan.record_buffer_shapes(values, result)
        else:
            # Traced path: the plan records raw per-step durations (one
            # C-level append between kernels), then the histogram feeds
            # and the runtime.run span are all emitted post-hoc in one
            # cache-coherent cluster — a `with span(...)` here would pay
            # its bookkeeping cold on both sides of the kernel sequence.
            durations: list[float] = []
            started_at = time.time()
            start = time.perf_counter()
            try:
                result = plan.replay_timed(values, durations.append)
            except BaseException as exc:
                obs_trace.leaf_span(
                    "runtime.run",
                    started_at,
                    time.perf_counter() - start,
                    status="error",
                    backend=plan.backend,
                    sizes=list(sizes),
                    error=f"{type(exc).__name__}: {exc}",
                )
                raise
            elapsed = time.perf_counter() - start
            if out is not None and result is not out:
                # The traced loop has no out-parameter form (per-step
                # timing is its whole point); honour the caller's buffer
                # with one copy outside the measured kernel sequence.
                np.copyto(out, result)
                result = out
            for (observe_s, observe_rate, flops), seconds in zip(
                self._kernel_observers(entry, plan), durations
            ):
                observe_s(seconds)
                if seconds > 0.0 and flops > 0.0:
                    observe_rate(flops / seconds)
            obs_trace.leaf_span(
                "runtime.run",
                started_at,
                elapsed,
                backend=plan.backend,
                sizes=list(sizes),
                variant=entry.variant.name,
                elapsed=elapsed,
            )
        with self._memo_lock:
            self.backend_executions[plan.backend] = (
                self.backend_executions.get(plan.backend, 0) + 1
            )
            self.last_execute_seconds = elapsed
            self.last_execute_at = time.monotonic()
        self._observe_execution(plan.backend, elapsed)
        # Snapshot the decision that actually ran before the feedback
        # checkpoint — a re-selection there swaps the entry in place, and
        # the outcome must describe this call, not the next one.
        variant, cost = entry.variant, entry.cost
        if self._reselect_ratio is not None:
            self._feedback(entry, sizes, elapsed)
        return DispatchOutcome(sizes, variant, cost, result)

    def _feedback(
        self, entry: _MemoEntry, q: tuple[int, ...], elapsed: float
    ) -> None:
        """Measured-vs-predicted disagreement check for one replay.

        Between checkpoints this is one increment, one EMA update, and one
        integer compare.  At a checkpoint (the first after
        ``reselect_min_executions`` replays, then doubling — so the total
        number of checks over an entry's lifetime is logarithmic in its
        executions), the calibration refreshes and the full pool is
        re-swept under it.  The entry's decision is swapped (the plan
        recompiles lazily on the next call) when the calibrated winner
        differs and either trigger fires by ``reselect_ratio``:

        * *disagreement* — the measured EMA and the calibrated prediction
          of the current variant diverge (the model has not caught up with
          this machine yet, so the original selection is suspect);
        * *advantage* — the calibrated model prices another variant that
          much cheaper than the current one.  This is the trigger that
          fires once calibration has learned from this very entry's
          traffic: prediction then *agrees* with the measurement, yet the
          learned rates expose a better selection.

        Without the advantage trigger, an entry whose own traffic taught
        the model would never re-select — agreement would mask the now
        visibly-wrong original choice.
        """
        entry.executions += 1
        ema = entry.measured_ema
        entry.measured_ema = (
            elapsed
            if ema is None
            else ema + MEASURED_EMA_WEIGHT * (elapsed - ema)
        )
        if entry.executions < max(self._reselect_min, entry.next_check):
            return
        entry.next_check = entry.executions * 2
        calibration = self._calibration
        measured = entry.measured_ema
        refresh = getattr(calibration, "maybe_refresh", None)
        if refresh is not None:
            refresh()
        predicted = float(calibration(entry.variant, q))
        self.reselect_checks += 1
        if measured <= 0.0 or predicted <= 0.0:
            return
        disagreement = (
            measured / predicted
            if measured >= predicted
            else predicted / measured
        )
        snapshot = self._sync_pool()
        costs = self._evaluate_under(
            calibration, snapshot, np.asarray(q, dtype=np.float64)[None, :]
        )
        index = int(costs[:, 0].argmin())
        winner = snapshot[index]
        best = float(costs[index, 0])
        advantage = predicted / best if best > 0.0 else float("inf")
        if (
            disagreement < self._reselect_ratio
            and advantage < self._reselect_ratio
        ):
            return
        with self._memo_lock:
            if winner is entry.variant:
                # The calibrated model disagrees with the measurement but
                # still picks the same variant: refresh the entry's cost
                # (now in calibrated seconds) and keep the plan warm.
                entry.cost = float(costs[index, 0])
                return
            self.reselections += 1
            entry.variant = winner
            entry.cost = float(costs[index, 0])
            entry.plan = None
            entry.backend = None
            entry.bench = None
            entry.kernel_hists = None
            entry.arenas = []
            entry.executions = 0
            entry.measured_ema = None
            entry.next_check = 0

    @staticmethod
    def _evaluate_under(
        estimator: CostEstimator,
        snapshot: tuple["Variant", ...],
        validated: np.ndarray,
    ) -> np.ndarray:
        """One cost sweep under an *explicit* estimator (re-selection uses
        the calibration model regardless of ``self.cost_estimator``)."""
        cost_many = getattr(estimator, "cost_many", None)
        if cost_many is not None:
            return np.stack(
                [
                    np.asarray(cost_many(v, validated), dtype=np.float64)
                    for v in snapshot
                ]
            )
        return np.array(
            [
                [
                    float(estimator(v, tuple(int(x) for x in row)))
                    for row in validated
                ]
                for v in snapshot
            ],
            dtype=np.float64,
        ).reshape(len(snapshot), validated.shape[0])

    def __call__(self, *arrays: np.ndarray) -> np.ndarray:
        """Evaluate the chain: infer sizes, pick the best variant, run it."""
        if len(arrays) == 1 and isinstance(arrays[0], (list, tuple)):
            arrays = tuple(arrays[0])
        return self.run(arrays).result

    def execute_many(
        self, instances: Sequence[Sequence[np.ndarray]]
    ) -> list[np.ndarray]:
        """Dispatch and execute a batch of instances.

        All uncached size vectors share **one** broadcast cost sweep (and
        one plan compilation per distinct size); execution then replays
        the per-size plans in input order.
        """
        prepared = [
            [np.asarray(a, dtype=np.float64) for a in arrays]
            for arrays in instances
        ]
        sized = [self._infer.infer(arrays) for arrays in prepared]
        local: dict[tuple[int, ...], _MemoEntry] = {}
        if sized:
            snapshot = self._sync_pool()
            estimator = self._cost_estimator
            with self._memo_lock:
                fresh = [
                    q for q in dict.fromkeys(sized) if q not in self._memo
                ]
                # Counters mirror the scalar path: the first occurrence of
                # each uncached size is a miss (they share the single
                # sweep below); every other instance — warm sizes and
                # repeats of sizes this very batch resolves — is a hit.
                self.memo_misses += len(fresh)
                self.memo_hits += len(sized) - len(fresh)
            if fresh:
                costs = self._evaluate_costs(
                    snapshot, np.asarray(fresh, dtype=np.float64)
                )
                winners = costs.argmin(axis=0)
                for j, q in enumerate(fresh):
                    local[q] = _MemoEntry(
                        snapshot[int(winners[j])],
                        float(costs[winners[j], j]),
                        None,
                    )
                if self.memo_capacity > 0:
                    with self._memo_lock:
                        if (
                            self._pool_snapshot is snapshot
                            and self._cost_estimator is estimator
                        ):
                            for q, entry in local.items():
                                if q not in self._memo:
                                    self._memo[q] = entry
                            while len(self._memo) > self.memo_capacity:
                                self._memo.popitem(last=False)
                                self.memo_evictions += 1
        results = []
        executed: dict[str, int] = {}
        start = time.perf_counter()
        for q, arrays in zip(sized, prepared):
            # Counters were settled above.  The local entries keep the
            # one-sweep promise even with memo_capacity=0 or immediate
            # eviction; _select_entry is the last-resort fallback (and
            # counts its own miss).
            entry = self._lookup(q, count=False) or local.get(q)
            if entry is None:
                entry = self._select_entry(q)
            plan = self._entry_plan(entry, q)
            results.append(plan.replay(arrays))
            executed[plan.backend] = executed.get(plan.backend, 0) + 1
        if sized:
            elapsed = time.perf_counter() - start
            with self._memo_lock:
                for name, count in executed.items():
                    self.backend_executions[name] = (
                        self.backend_executions.get(name, 0) + count
                    )
                self.last_execute_seconds = elapsed
                self.last_execute_at = time.monotonic()
            get_registry().histogram(
                "runtime.batch_seconds", backend=self._backend_label
            ).observe(elapsed)
        return results

    def memo_stats(self) -> dict[str, object]:
        """Memo and execution counters, JSON-ready (service stats, tests).

        ``executions`` counts executed instances per *concrete* plan
        backend — under ``auto`` this is how its measured choices surface
        in production; ``last_execute_seconds`` is the replay wall time of
        the most recent :meth:`run` call or :meth:`execute_many` batch.
        """
        with self._memo_lock:
            return {
                "entries": len(self._memo),
                "capacity": self.memo_capacity,
                "hits": self.memo_hits,
                "misses": self.memo_misses,
                "evictions": self.memo_evictions,
                "backend": self._backend_label,
                "reselect_checks": self.reselect_checks,
                "reselections": self.reselections,
                "executions": dict(self.backend_executions),
                "auto_wins": dict(self.auto_wins),
                "last_execute_seconds": self.last_execute_seconds,
                "idle_arenas": sum(
                    len(entry.arenas) for entry in self._memo.values()
                ),
                "arena_bytes": sum(
                    arena.nbytes
                    for entry in self._memo.values()
                    for arena in entry.arenas
                ),
            }

    def __len__(self) -> int:
        return len(self.variants)

"""repro.runtime — the run-time half of the generated code (paper Fig. 1).

The paper's product has two halves: compile-time variant generation
(:mod:`repro.compiler`) and the run-time dispatch function that, per
observed instance, picks and runs the cheapest variant.  This package is
that second half, structured for the per-request hot path:

* :mod:`repro.runtime.executor` — the kernel-call interpreter
  (:func:`execute_variant`), size inference, and the concrete-operand
  helpers;
* :mod:`repro.runtime.plan` — :class:`ExecutionPlan`, one ``(variant,
  sizes)`` pair compiled into a replayable loop of pre-resolved kernel
  calls over flat buffer slots (no dict lookups, no re-validation);
* :mod:`repro.runtime.dispatcher` — :class:`Dispatcher`, the generated
  dispatch function with a bounded size-keyed memo: repeated instances
  bypass the cost sweep and replay their compiled plan, making the
  steady-state per-call path amortized O(1) in everything but the kernel
  work itself;
* :mod:`repro.runtime.backends` — pluggable execution backends
  (``reference``, ``blas``, and the code-generating ``c`` emitter) that
  lower each frozen kernel call to a direct callable at plan-compile
  time, plus the dispatcher's measured ``auto`` strategy.

``repro.compiler.dispatch`` and ``repro.compiler.executor`` remain as
import shims for pre-existing call sites.
"""

from repro.runtime.backends import (
    BACKEND_NAMES,
    BLAS_LOWERED_KERNELS,
    Backend,
    BlasBackend,
    CEmitBackend,
    FALLBACK_ROUTINE,
    LoweredKernel,
    PLAN_BACKEND_NAMES,
    REFERENCE_ROUTINE,
    ReferenceBackend,
    blas_available,
    cemit_available,
    get_backend,
)
from repro.runtime.codegen_cache import (
    CodegenCache,
    configure_codegen_cache,
    get_codegen_cache,
)
from repro.runtime.executor import (
    KernelCallConfig,
    SizeInferencer,
    execute_variant,
    expected_stored_shapes,
    infer_sizes,
    naive_evaluate,
    random_instance_arrays,
    random_matrix,
)
from repro.runtime.plan import ExecutionPlan, PlanArena, compile_plan
from repro.runtime.dispatcher import (
    DEFAULT_MEMO_CAPACITY,
    CostEstimator,
    DispatchOutcome,
    Dispatcher,
    flop_estimator,
)

__all__ = [
    "BACKEND_NAMES",
    "BLAS_LOWERED_KERNELS",
    "Backend",
    "BlasBackend",
    "CEmitBackend",
    "CodegenCache",
    "DEFAULT_MEMO_CAPACITY",
    "CostEstimator",
    "DispatchOutcome",
    "Dispatcher",
    "ExecutionPlan",
    "PlanArena",
    "FALLBACK_ROUTINE",
    "LoweredKernel",
    "PLAN_BACKEND_NAMES",
    "REFERENCE_ROUTINE",
    "ReferenceBackend",
    "blas_available",
    "cemit_available",
    "configure_codegen_cache",
    "get_backend",
    "get_codegen_cache",
    "KernelCallConfig",
    "SizeInferencer",
    "compile_plan",
    "execute_variant",
    "expected_stored_shapes",
    "flop_estimator",
    "infer_sizes",
    "naive_evaluate",
    "random_instance_arrays",
    "random_matrix",
]

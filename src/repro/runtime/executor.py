"""Execute variants on concrete NumPy matrices (paper Section IV, Fig. 1).

The executor is the run-time half of the generated code: it walks a
variant's kernel-call sequence, feeding stored arrays through the reference
kernel implementations, resolving pending inversions/transpositions at the
end, and managing intermediate buffers.

:func:`execute_variant` is the interpretive, validate-every-call entry
point; the per-request hot path goes through a compiled
:class:`~repro.runtime.plan.ExecutionPlan` instead, which resolves kernel
implementations and buffer slots once per ``(variant, sizes)`` pair and
replays without re-validation.

Storage convention: the caller passes one array per chain matrix, holding
the *base* matrix ``M_i`` (not ``op(M_i)``).  A transposed operand is
therefore passed with its stored shape ``q_i x q_{i-1}``; inverted operands
are square, so their stored shape is unambiguous.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Optional, Sequence

import numpy as np

from repro.errors import ExecutionError
from repro.ir.chain import Chain
from repro.ir.features import Property, Structure
from repro.kernels import reference

if TYPE_CHECKING:  # pragma: no cover - typing only
    # Imported lazily to keep repro.runtime import-independent of the
    # compiler package (whose __init__ imports the shims back into here).
    from repro.compiler.states import OperandState
    from repro.compiler.variant import Variant


@dataclass(frozen=True)
class KernelCallConfig:
    """Run-time configuration handed to a kernel implementation."""

    side: str
    left_trans: bool
    right_trans: bool
    left_lower: Optional[bool]
    right_lower: Optional[bool]
    #: Which operand is stored diagonal.  ``side`` marks the *structured*
    #: operand generically, which is ambiguous for DIMM when the other
    #: operand is structured too (``L * D`` and ``S * D`` both assign
    #: side="left" to the non-diagonal operand) — these flags let sided
    #: lowerings locate the diagonal exactly.  Default ``False`` keeps
    #: hand-built configs (tests, custom backends) on the side heuristic.
    left_diag: bool = False
    right_diag: bool = False


def _stored_diag(state: "OperandState") -> bool:
    return state.stored_structure is Structure.DIAGONAL


def _stored_lower(state: "OperandState") -> Optional[bool]:
    stored = state.stored_structure
    if stored is Structure.LOWER_TRIANGULAR:
        return True
    if stored is Structure.UPPER_TRIANGULAR:
        return False
    return None


def expected_stored_shapes(chain: Chain, sizes: Sequence[int]) -> list[tuple[int, int]]:
    """Stored array shape expected for each chain matrix on an instance."""
    q = chain.validate_sizes(sizes)
    shapes = []
    for i, operand in enumerate(chain):
        logical = (q[i], q[i + 1])
        shapes.append(logical[::-1] if operand.transposed else logical)
    return shapes


def infer_sizes(chain: Chain, arrays: Sequence[np.ndarray]) -> tuple[int, ...]:
    """Recover the instance vector ``q`` from stored arrays.

    Raises :class:`ExecutionError` when shapes are inconsistent with the
    chain (mismatching inner dimensions or non-square square matrices).
    """
    if len(arrays) != chain.n:
        raise ExecutionError(
            f"expected {chain.n} arrays for chain {chain}, got {len(arrays)}"
        )
    sizes: list[Optional[int]] = [None] * (chain.n + 1)
    for i, (operand, array) in enumerate(zip(chain, arrays)):
        if array.ndim != 2:
            raise ExecutionError(f"operand {i} must be a 2-D array")
        rows, cols = array.shape
        if operand.transposed:
            rows, cols = cols, rows
        for idx, dim in ((i, rows), (i + 1, cols)):
            if sizes[idx] is None:
                sizes[idx] = dim
            elif sizes[idx] != dim:
                raise ExecutionError(
                    f"inconsistent sizes at q{idx}: {sizes[idx]} vs {dim} "
                    f"(operand {i}, shape {array.shape})"
                )
    assert all(s is not None for s in sizes)
    result = tuple(int(s) for s in sizes)  # type: ignore[arg-type]
    chain.validate_sizes(result)
    return result


class SizeInferencer:
    """Per-chain compiled size inference for the dispatch hot path.

    :func:`infer_sizes` re-reads each operand's transpose flag and the
    chain's square constraints on every call and cross-checks every shared
    dimension through a generic slot table.  One chain shape serves
    millions of instances, so this class hoists the per-chain facts —
    transpose flags, square slots — into tuples at construction and infers
    with a single linked pass over the array shapes (each inner dimension
    is checked where consecutive operands meet, which covers exactly the
    constraints of the generic path).

    Returns the same validated size tuple as
    ``infer_sizes(chain, arrays)``; inconsistent or malformed arrays raise
    :class:`ExecutionError`, square-constraint violations the chain's
    canonical :class:`~repro.errors.ShapeError`.
    """

    __slots__ = ("chain", "_transposed", "_square_slots")

    def __init__(self, chain: Chain):
        self.chain = chain
        self._transposed = tuple(op.transposed for op in chain)
        self._square_slots = tuple(
            i for i, op in enumerate(chain.operands) if op.is_square
        )

    def infer(self, arrays: Sequence[np.ndarray]) -> tuple[int, ...]:
        chain = self.chain
        n = chain.n
        if len(arrays) != n:
            raise ExecutionError(
                f"expected {n} arrays for chain {chain}, got {len(arrays)}"
            )
        q = [0] * (n + 1)
        cols = 0
        for i, (array, transposed) in enumerate(zip(arrays, self._transposed)):
            shape = array.shape
            if len(shape) != 2:
                raise ExecutionError(f"operand {i} must be a 2-D array")
            rows, new_cols = shape
            if transposed:
                rows, new_cols = new_cols, rows
            if i and rows != cols:
                raise ExecutionError(
                    f"inconsistent sizes at q{i}: {cols} vs {rows} "
                    f"(operand {i}, shape {array.shape})"
                )
            if rows <= 0 or new_cols <= 0:
                raise ExecutionError(
                    f"operand {i} has a degenerate shape {array.shape}"
                )
            q[i] = rows
            cols = new_cols
        q[n] = cols
        for i in self._square_slots:
            if q[i] != q[i + 1]:
                chain.validate_sizes(q)  # canonical ShapeError
        return tuple(q)

    __call__ = infer


def resolve_fixup(kernel_name: str, state: "OperandState"):
    """The unary callable for one final fix-up kernel.

    Single source of the fix-up name-to-implementation mapping, shared by
    the interpretive executor and compiled execution plans (which must
    stay bit-identical).  ``state`` is the variant's final operand state —
    it determines the stored triangularity for ``TRINV``.
    """
    if kernel_name == "GEINV" or kernel_name == "SYINV":
        return reference.geinv
    if kernel_name == "POINV":
        return reference.poinv
    if kernel_name == "TRINV":
        lower = bool(_stored_lower(state))
        return lambda value: reference.trinv(value, lower=lower)
    if kernel_name == "DIINV":
        return reference.diinv
    if kernel_name == "TRANSPOSE":
        return reference.explicit_transpose
    if kernel_name == "COPY":
        return reference.copy
    raise ExecutionError(f"unknown fix-up kernel {kernel_name}")


def _apply_fixups(variant: Variant, value: np.ndarray) -> np.ndarray:
    state = variant.final_state
    for fix in variant.fixups:
        value = resolve_fixup(fix.kernel.name, state)(value)
    return value


def execute_variant(
    variant: Variant, arrays: Sequence[np.ndarray], check_shapes: bool = True
) -> np.ndarray:
    """Evaluate the chain on concrete matrices through this variant's kernels."""
    arrays = [np.asarray(a, dtype=np.float64) for a in arrays]
    if check_shapes:
        sizes = infer_sizes(variant.chain, arrays)
        expected = expected_stored_shapes(variant.chain, sizes)
        for i, (array, shape) in enumerate(zip(arrays, expected)):
            if array.shape != shape:
                raise ExecutionError(
                    f"operand {i}: expected stored shape {shape}, got {array.shape}"
                )

    values: dict[tuple[str, int], np.ndarray] = {
        ("matrix", i): array for i, array in enumerate(arrays)
    }
    result: Optional[np.ndarray] = None
    for step in variant.steps:
        impl = reference.KERNEL_IMPLS.get(step.kernel.name)
        if impl is None:
            raise ExecutionError(f"no implementation for kernel {step.kernel.name}")
        cfg = KernelCallConfig(
            side=step.side,
            left_trans=step.left_state.transposed,
            right_trans=step.right_state.transposed,
            left_lower=_stored_lower(step.left_state),
            right_lower=_stored_lower(step.right_state),
            left_diag=_stored_diag(step.left_state),
            right_diag=_stored_diag(step.right_state),
        )
        left = values[step.left_ref]
        right = values[step.right_ref]
        result = impl(left, right, cfg)
        values[("step", step.index)] = result

    if result is None:  # single-matrix chain: fix-ups do all the work
        result = arrays[0]
        if not variant.fixups:
            # Never alias the caller's operand: without a fix-up to
            # produce a fresh array, hand back a private copy.
            return result.copy()
    return _apply_fixups(variant, result)


# ---------------------------------------------------------------------------
# Test/benchmark helpers: random concrete operands and a naive oracle.
# ---------------------------------------------------------------------------

def random_matrix(
    structure: Structure,
    prop: Property,
    rows: int,
    cols: int,
    rng: np.random.Generator,
) -> np.ndarray:
    """Random well-conditioned matrix honouring the given features."""
    if structure is Structure.GENERAL and prop is Property.SINGULAR:
        return rng.standard_normal((rows, cols))
    if rows != cols:
        raise ExecutionError(
            f"features ({structure.value}, {prop.value}) require a square "
            f"matrix, got {rows}x{cols}"
        )
    n = rows
    if prop is Property.ORTHOGONAL:
        if structure is Structure.DIAGONAL:
            # A diagonal orthogonal matrix is a signature matrix.
            return np.diag(np.where(rng.random(n) < 0.5, -1.0, 1.0))
        q, _ = np.linalg.qr(rng.standard_normal((n, n)))
        if structure is Structure.SYMMETRIC:
            # A random symmetric orthogonal matrix: a reflection I - 2vv^T.
            v = rng.standard_normal((n, 1))
            v /= np.linalg.norm(v)
            return np.eye(n) - 2.0 * (v @ v.T)
        return q
    if prop is Property.SPD:
        a = rng.standard_normal((n, n))
        return a @ a.T / np.sqrt(n) + np.eye(n)
    if structure is Structure.SYMMETRIC:
        a = rng.standard_normal((n, n))
        s = (a + a.T) / 2.0
        if prop.is_invertible:
            s += np.eye(n) * n  # diagonal dominance guarantees invertibility
        return s
    if structure.is_triangular:
        a = rng.standard_normal((n, n))
        t = np.tril(a) if structure is Structure.LOWER_TRIANGULAR else np.triu(a)
        if prop.is_invertible:
            d = np.abs(np.diag(t)) + 1.0
            t[np.arange(n), np.arange(n)] = d
        return t
    if structure is Structure.DIAGONAL:
        values = rng.standard_normal(n)
        if prop.is_invertible:
            values = np.sign(values) * (np.abs(values) + 1.0)
        return np.diag(values)
    # General invertible: shift the diagonal away from zero.
    a = rng.standard_normal((n, n))
    return a + np.eye(n) * np.sqrt(n)


def random_instance_arrays(
    chain: Chain, sizes: Sequence[int], rng: np.random.Generator
) -> list[np.ndarray]:
    """Random stored arrays for every operand of an instance."""
    q = chain.validate_sizes(sizes)
    arrays = []
    for i, operand in enumerate(chain):
        rows, cols = q[i], q[i + 1]
        if operand.transposed:
            rows, cols = cols, rows
        arrays.append(
            random_matrix(
                operand.matrix.structure, operand.matrix.prop, rows, cols, rng
            )
        )
    return arrays


def naive_evaluate(chain: Chain, arrays: Sequence[np.ndarray]) -> np.ndarray:
    """Oracle: evaluate the chain directly with dense NumPy operations."""
    result: Optional[np.ndarray] = None
    for operand, array in zip(chain, arrays):
        value = np.asarray(array, dtype=np.float64)
        if operand.op.inverted:
            value = np.linalg.inv(value)
        if operand.op.transposed:
            value = value.T
        result = value if result is None else result @ value
    assert result is not None
    return result

"""Compiled execution plans: the per-request hot path of the generated code.

:func:`execute_variant` re-derives everything on every call — it looks up
each step's kernel implementation in a dict, rebuilds its
:class:`~repro.runtime.executor.KernelCallConfig`, addresses intermediate
buffers through a ``("step", i)`` dict, and (by default) re-infers and
re-validates the operand shapes.  None of that depends on the arrays;
all of it depends only on ``(variant, sizes)``.

:func:`compile_plan` therefore does that work **once**: it resolves every
kernel implementation to a direct callable, freezes the call
configurations, flattens the buffer references into integer slots of one
flat list (inputs first, one slot per step after), pre-binds the fix-up
kernels, and records the stored shapes the instance expects.  The
resulting :class:`ExecutionPlan` replays with a single tight loop over
pre-resolved ``(impl, left_slot, right_slot, config, out_slot)`` tuples —
no dict lookups, no dataclass construction, no re-validation.

Plans are immutable and reusable: the memoizing
:class:`~repro.runtime.dispatcher.Dispatcher` compiles one per observed
size vector and replays it for every later instance with the same sizes.
"""

from __future__ import annotations

import time
from typing import TYPE_CHECKING, Callable, Optional, Sequence, Union

import numpy as np

from repro.errors import ExecutionError
from repro.runtime.backends import Backend, get_backend
from repro.runtime.executor import (
    KernelCallConfig,
    _stored_diag,
    _stored_lower,
    expected_stored_shapes,
    resolve_fixup,
)

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.compiler.variant import Variant

#: One pre-resolved kernel call: specialized implementation (call config
#: already baked in), operand slots, output slot.
PlanOp = tuple[Callable, int, int, int]


def _resolve_fixups(variant: Variant) -> tuple[Callable[[np.ndarray], np.ndarray], ...]:
    """Pre-bind the final fix-up kernels to direct array callables."""
    state = variant.final_state
    return tuple(
        resolve_fixup(fix.kernel.name, state) for fix in variant.fixups
    )


class ExecutionPlan:
    """One variant, one instance size, compiled down to a replayable loop.

    Construction (via :func:`compile_plan`) validates the size vector and
    resolves every step; :meth:`execute` then trusts its inputs by default
    — the caller (the dispatcher) has already inferred the sizes from the
    arrays, which guarantees the stored shapes match :attr:`expected_shapes`.
    Pass ``check_shapes=True`` to re-assert that explicitly (the first-run
    or untrusted-caller path).

    Plans hold no array state, so one plan may be replayed concurrently
    from many threads.
    """

    __slots__ = (
        "variant",
        "chain",
        "sizes",
        "expected_shapes",
        "call_configs",
        "backend",
        "step_routines",
        "_ops",
        "_fixups",
        "_num_inputs",
        "_native",
    )

    def __init__(
        self,
        variant: Variant,
        sizes: Sequence[int],
        backend: Union[str, Backend] = "reference",
    ):
        chain = variant.chain
        q = chain.validate_sizes(sizes)
        self.variant = variant
        self.chain = chain
        self.sizes: tuple[int, ...] = q
        self.expected_shapes: tuple[tuple[int, int], ...] = tuple(
            expected_stored_shapes(chain, q)
        )
        self._num_inputs = chain.n

        # Buffer slots: inputs occupy 0..n-1, step i's result lands in
        # slot n + i.  A ("matrix", j) ref resolves to j, ("step", j) to
        # n + j — the executor's dict keys collapse into list indices.
        def slot(ref) -> int:
            kind, index = ref
            if kind == "matrix":
                return index
            if kind == "step":
                return chain.n + index
            raise ExecutionError(f"unknown buffer reference {ref!r}")

        resolved = get_backend(backend)
        self.backend: str = resolved.name
        ops: list[PlanOp] = []
        configs: list[KernelCallConfig] = []
        routines: list[str] = []
        for step in variant.steps:
            cfg = KernelCallConfig(
                side=step.side,
                left_trans=step.left_state.transposed,
                right_trans=step.right_state.transposed,
                left_lower=_stored_lower(step.left_state),
                right_lower=_stored_lower(step.right_state),
                left_diag=_stored_diag(step.left_state),
                right_diag=_stored_diag(step.right_state),
            )
            configs.append(cfg)
            # The config is baked into the callable: transposes, sides,
            # and triangularity resolve at compile time.
            impl, routine = resolved.specialize(step.kernel.name, cfg)
            routines.append(routine)
            ops.append(
                (
                    impl,
                    slot(step.left_ref),
                    slot(step.right_ref),
                    chain.n + step.index,
                )
            )
        self.call_configs: tuple[KernelCallConfig, ...] = tuple(configs)
        self.step_routines: tuple[str, ...] = tuple(routines)
        self._ops: tuple[PlanOp, ...] = tuple(ops)
        self._fixups = _resolve_fixups(variant)
        # Whole-plan lowering (the ``c`` backend): one fused native call
        # replacing the step loop on the untraced replay path.  A backend
        # that declines (no toolchain, unsupported step, ...) returns
        # None, and the plan reports the backend it actually runs on.
        self._native = resolved.lower_plan(self)
        if self._native is None and resolved.fallback_name:
            self.backend = resolved.fallback_name

    def validate(self, arrays: Sequence[np.ndarray]) -> None:
        """Assert the stored arrays match this plan's instance shapes."""
        if len(arrays) != self._num_inputs:
            raise ExecutionError(
                f"expected {self._num_inputs} arrays for chain {self.chain}, "
                f"got {len(arrays)}"
            )
        for i, (array, shape) in enumerate(zip(arrays, self.expected_shapes)):
            if array.shape != shape:
                raise ExecutionError(
                    f"operand {i}: expected stored shape {shape}, "
                    f"got {array.shape}"
                )

    def execute(
        self, arrays: Sequence[np.ndarray], check_shapes: bool = False
    ) -> np.ndarray:
        """Replay the compiled kernel sequence on concrete matrices."""
        values = [np.asarray(a, dtype=np.float64) for a in arrays]
        if check_shapes:
            self.validate(values)
        elif len(values) != self._num_inputs:
            raise ExecutionError(
                f"expected {self._num_inputs} arrays for chain {self.chain}, "
                f"got {len(values)}"
            )
        return self.replay(values)

    def replay(self, values: list[np.ndarray]) -> np.ndarray:
        """The trusted inner loop: run the pre-resolved kernel sequence.

        ``values`` must be a fresh list of float64 arrays matching
        :attr:`expected_shapes` in stored order (the dispatcher guarantees
        this via size inference); the list is extended in place with the
        intermediate buffers, so the caller must hand over ownership.
        """
        if self._native is not None:
            result = self._native(values)
            for fixup in self._fixups:
                result = fixup(result)
            return result
        values.extend([None] * len(self._ops))
        result: Optional[np.ndarray] = None
        for impl, left, right, out in self._ops:
            result = impl(values[left], values[right])
            values[out] = result
        if result is None:  # single-matrix chain: fix-ups do all the work
            result = values[0]
            if not self._fixups:
                # Never alias the caller's operand: without a fix-up to
                # produce a fresh array, hand back a private copy.
                return result.copy()
        for fixup in self._fixups:
            result = fixup(result)
        return result

    def replay_timed(
        self,
        values: list[np.ndarray],
        record: Callable[[float], None],
    ) -> np.ndarray:
        """:meth:`replay` with per-step kernel timing reported to ``record``.

        ``record`` receives one elapsed-seconds value per step, in step
        order — typically a plain ``list.append``, so the loop's only
        addition over :meth:`replay` is two clock reads and one C-level
        append per kernel call.  The caller feeds the recorded durations
        to its per-kernel histograms *after* the replay: batched observes
        run back-to-back cache-warm instead of paying a cache-cold
        histogram update between kernel calls.  This is the *traced*
        replay path — the dispatcher only takes it while tracing is
        enabled, so the plain :meth:`replay` loop stays clock-free.

        A natively-lowered plan (the ``c`` backend) deliberately does
        *not* take its fused call here: per-step timing is the entire
        point of tracing, and every native plan also carries the blas
        per-step lowering, so the traced loop below stays meaningful.
        """
        values.extend([None] * len(self._ops))
        result: Optional[np.ndarray] = None
        for impl, left, right, out in self._ops:
            t0 = time.perf_counter()
            result = impl(values[left], values[right])
            record(time.perf_counter() - t0)
            values[out] = result
        if result is None:  # single-matrix chain: fix-ups do all the work
            result = values[0]
            if not self._fixups:
                return result.copy()
        for fixup in self._fixups:
            result = fixup(result)
        return result

    __call__ = execute

    def describe(self) -> str:
        lines = [
            f"execution plan for {self.variant.name or '<anonymous>'} "
            f"at q={list(self.sizes)} [backend={self.backend}]"
        ]
        if self._native is not None:
            lines.append(
                "  native: fused code-generated step loop (replay path)"
            )
        for step, (_, left, right, out), cfg, routine in zip(
            self.variant.steps, self._ops, self.call_configs, self.step_routines
        ):
            lines.append(
                f"  slot[{out}] := {step.kernel.name}"
                f"(slot[{left}], slot[{right}], side={cfg.side})"
                f" -> {routine}"
            )
        for fixup in self._fixups:
            lines.append(f"  finalize: {getattr(fixup, '__name__', 'fixup')}")
        return "\n".join(lines)


def compile_plan(
    variant: Variant,
    sizes: Sequence[int],
    backend: Union[str, Backend] = "reference",
) -> ExecutionPlan:
    """Compile ``(variant, sizes)`` into a replayable :class:`ExecutionPlan`."""
    return ExecutionPlan(variant, sizes, backend=backend)

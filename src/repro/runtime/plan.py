"""Compiled execution plans: the per-request hot path of the generated code.

:func:`execute_variant` re-derives everything on every call — it looks up
each step's kernel implementation in a dict, rebuilds its
:class:`~repro.runtime.executor.KernelCallConfig`, addresses intermediate
buffers through a ``("step", i)`` dict, and (by default) re-infers and
re-validates the operand shapes.  None of that depends on the arrays;
all of it depends only on ``(variant, sizes)``.

:func:`compile_plan` therefore does that work **once**: it resolves every
kernel implementation to a direct callable, freezes the call
configurations, flattens the buffer references into integer slots of one
flat list (inputs first, one slot per step after), pre-binds the fix-up
kernels, and records the stored shapes the instance expects.  The
resulting :class:`ExecutionPlan` replays with a single tight loop over
pre-resolved ``(impl, left_slot, right_slot, config, out_slot)`` tuples —
no dict lookups, no dataclass construction, no re-validation.

Plans are immutable and reusable: the memoizing
:class:`~repro.runtime.dispatcher.Dispatcher` compiles one per observed
size vector and replays it for every later instance with the same sizes.

Warm replays can additionally run **allocation-free**: a
:class:`PlanArena` pre-allocates the plan's intermediate step buffers
(shapes recorded on the first replay), and backends that implement
:meth:`~repro.runtime.backends.Backend.specialize_out` write each step
straight into its arena slot instead of ``np.empty``-ing a fresh array
per kernel call.  The *final* result is deliberately never arena-backed —
it escapes to the caller, and an arena-owned result would be overwritten
by the next replay — so a caller chasing zero allocations passes its own
``out=`` buffer.  Arenas hold mutable array state and are therefore
*not* shareable across concurrent replays; the dispatcher pools them
with per-replay checkout.
"""

from __future__ import annotations

import time
from typing import TYPE_CHECKING, Callable, Optional, Sequence, Union

import numpy as np

from repro.errors import ExecutionError
from repro.runtime.backends import Backend, get_backend
from repro.runtime.executor import (
    KernelCallConfig,
    _stored_diag,
    _stored_lower,
    expected_stored_shapes,
    resolve_fixup,
)

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.compiler.variant import Variant

#: One pre-resolved kernel call: specialized implementation (call config
#: already baked in), operand slots, output slot.
PlanOp = tuple[Callable, int, int, int]

#: The arena-aware op: adds the optional out-parameter implementation
#: (``impl_out(left, right, out) -> out``), ``None`` where the backend
#: cannot write in place for this kernel/config.
PlanOutOp = tuple[Callable, Optional[Callable], int, int, int]


class PlanArena:
    """Pre-allocated intermediate buffers for one plan's warm replays.

    One buffer per step that (a) is not the final step — the result
    escapes to the caller and must never be arena-owned — and (b) has an
    out-parameter kernel implementation to write into it; every other
    slot stays ``None`` and its step allocates normally.  An arena is
    mutable shared state: it must back at most one replay at a time (the
    dispatcher enforces this by pooling arenas with per-replay checkout).
    """

    __slots__ = ("buffers", "nbytes")

    def __init__(self, plan: "ExecutionPlan"):
        shapes = plan._step_shapes
        if shapes is None:
            raise ExecutionError(
                "plan has no recorded buffer shapes yet; replay it once "
                "before building an arena"
            )
        last = len(shapes) - 1
        self.buffers: list[Optional[np.ndarray]] = [
            np.empty(shape, dtype=np.float64)
            if index != last and plan._out_ops[index][1] is not None
            else None
            for index, shape in enumerate(shapes)
        ]
        self.nbytes = sum(b.nbytes for b in self.buffers if b is not None)


def _resolve_fixups(variant: Variant) -> tuple[Callable[[np.ndarray], np.ndarray], ...]:
    """Pre-bind the final fix-up kernels to direct array callables."""
    state = variant.final_state
    return tuple(
        resolve_fixup(fix.kernel.name, state) for fix in variant.fixups
    )


class ExecutionPlan:
    """One variant, one instance size, compiled down to a replayable loop.

    Construction (via :func:`compile_plan`) validates the size vector and
    resolves every step; :meth:`execute` then trusts its inputs by default
    — the caller (the dispatcher) has already inferred the sizes from the
    arrays, which guarantees the stored shapes match :attr:`expected_shapes`.
    Pass ``check_shapes=True`` to re-assert that explicitly (the first-run
    or untrusted-caller path).

    Plans hold no array state, so one plan may be replayed concurrently
    from many threads.
    """

    __slots__ = (
        "variant",
        "chain",
        "sizes",
        "expected_shapes",
        "call_configs",
        "backend",
        "step_routines",
        "_ops",
        "_out_ops",
        "_fixups",
        "_num_inputs",
        "_native",
        "_step_shapes",
        "_result_shape",
    )

    def __init__(
        self,
        variant: Variant,
        sizes: Sequence[int],
        backend: Union[str, Backend] = "reference",
    ):
        chain = variant.chain
        q = chain.validate_sizes(sizes)
        self.variant = variant
        self.chain = chain
        self.sizes: tuple[int, ...] = q
        self.expected_shapes: tuple[tuple[int, int], ...] = tuple(
            expected_stored_shapes(chain, q)
        )
        self._num_inputs = chain.n

        # Buffer slots: inputs occupy 0..n-1, step i's result lands in
        # slot n + i.  A ("matrix", j) ref resolves to j, ("step", j) to
        # n + j — the executor's dict keys collapse into list indices.
        def slot(ref) -> int:
            kind, index = ref
            if kind == "matrix":
                return index
            if kind == "step":
                return chain.n + index
            raise ExecutionError(f"unknown buffer reference {ref!r}")

        resolved = get_backend(backend)
        self.backend: str = resolved.name
        ops: list[PlanOp] = []
        out_ops: list[PlanOutOp] = []
        configs: list[KernelCallConfig] = []
        routines: list[str] = []
        for step in variant.steps:
            cfg = KernelCallConfig(
                side=step.side,
                left_trans=step.left_state.transposed,
                right_trans=step.right_state.transposed,
                left_lower=_stored_lower(step.left_state),
                right_lower=_stored_lower(step.right_state),
                left_diag=_stored_diag(step.left_state),
                right_diag=_stored_diag(step.right_state),
            )
            configs.append(cfg)
            # The config is baked into the callable: transposes, sides,
            # and triangularity resolve at compile time.
            impl, routine = resolved.specialize(step.kernel.name, cfg)
            routines.append(routine)
            left_slot = slot(step.left_ref)
            right_slot = slot(step.right_ref)
            out_slot = chain.n + step.index
            ops.append((impl, left_slot, right_slot, out_slot))
            out_ops.append(
                (
                    impl,
                    resolved.specialize_out(step.kernel.name, cfg),
                    left_slot,
                    right_slot,
                    out_slot,
                )
            )
        self.call_configs: tuple[KernelCallConfig, ...] = tuple(configs)
        self.step_routines: tuple[str, ...] = tuple(routines)
        self._ops: tuple[PlanOp, ...] = tuple(ops)
        self._out_ops: tuple[PlanOutOp, ...] = tuple(out_ops)
        self._fixups = _resolve_fixups(variant)
        # Step-output shapes, recorded from the first completed replay
        # (record_buffer_shapes); None until then, which keeps new_arena
        # answering None — "warm" is exactly "replayed at least once".
        self._step_shapes: Optional[tuple[tuple[int, ...], ...]] = None
        self._result_shape: Optional[tuple[int, ...]] = None
        # Whole-plan lowering (the ``c`` backend): one fused native call
        # replacing the step loop on the untraced replay path.  A backend
        # that declines (no toolchain, unsupported step, ...) returns
        # None, and the plan reports the backend it actually runs on.
        self._native = resolved.lower_plan(self)
        if self._native is None and resolved.fallback_name:
            self.backend = resolved.fallback_name

    def validate(self, arrays: Sequence[np.ndarray]) -> None:
        """Assert the stored arrays match this plan's instance shapes."""
        if len(arrays) != self._num_inputs:
            raise ExecutionError(
                f"expected {self._num_inputs} arrays for chain {self.chain}, "
                f"got {len(arrays)}"
            )
        for i, (array, shape) in enumerate(zip(arrays, self.expected_shapes)):
            if array.shape != shape:
                raise ExecutionError(
                    f"operand {i}: expected stored shape {shape}, "
                    f"got {array.shape}"
                )

    def execute(
        self, arrays: Sequence[np.ndarray], check_shapes: bool = False
    ) -> np.ndarray:
        """Replay the compiled kernel sequence on concrete matrices."""
        values = [np.asarray(a, dtype=np.float64) for a in arrays]
        if check_shapes:
            self.validate(values)
        elif len(values) != self._num_inputs:
            raise ExecutionError(
                f"expected {self._num_inputs} arrays for chain {self.chain}, "
                f"got {len(values)}"
            )
        return self.replay(values)

    def replay(
        self,
        values: list[np.ndarray],
        arena: Optional[PlanArena] = None,
        out: Optional[np.ndarray] = None,
    ) -> np.ndarray:
        """The trusted inner loop: run the pre-resolved kernel sequence.

        ``values`` must be a fresh list of float64 arrays matching
        :attr:`expected_shapes` in stored order (the dispatcher guarantees
        this via size inference); the list is extended in place with the
        intermediate buffers, so the caller must hand over ownership.

        ``arena`` (built by :meth:`new_arena`) supplies pre-allocated
        intermediate buffers — steps with an out-parameter implementation
        write into their slot instead of allocating; the arena must not
        back another replay concurrently.  ``out`` receives the final
        result: on a fixup-free plan the last step writes straight into
        it (``out`` must not alias any operand and must match the result
        shape), otherwise the computed result is copied in.  The default
        ``arena=None, out=None`` call takes the original allocating loop
        untouched — the hot path pays nothing for the feature.
        """
        if arena is not None or out is not None:
            return self._replay_flex(values, arena, out)
        if self._native is not None:
            result = self._native(values)
            for fixup in self._fixups:
                result = fixup(result)
            return result
        values.extend([None] * len(self._ops))
        result: Optional[np.ndarray] = None
        for impl, left, right, out_slot in self._ops:
            result = impl(values[left], values[right])
            values[out_slot] = result
        if result is None:  # single-matrix chain: fix-ups do all the work
            result = values[0]
            if not self._fixups:
                # Never alias the caller's operand: without a fix-up to
                # produce a fresh array, hand back a private copy.
                return result.copy()
        for fixup in self._fixups:
            result = fixup(result)
        return result

    def _replay_flex(
        self,
        values: list[np.ndarray],
        arena: Optional[PlanArena],
        out: Optional[np.ndarray],
    ) -> np.ndarray:
        """Replay with arena-backed intermediates and/or a caller ``out``."""
        if self._native is not None:
            # The fused native call manages its own intermediates; the
            # arena is meaningless there (new_arena answers None), but a
            # caller-provided result buffer still gets honoured.
            result = self._native(values)
            for fixup in self._fixups:
                result = fixup(result)
            if out is not None and result is not out:
                np.copyto(out, result)
                result = out
            return result
        buffers = arena.buffers if arena is not None else None
        values.extend([None] * len(self._ops))
        result: Optional[np.ndarray] = None
        last = len(self._out_ops) - 1
        direct_out = out if not self._fixups else None
        for index, (impl, impl_out, left, right, out_slot) in enumerate(
            self._out_ops
        ):
            target = buffers[index] if buffers is not None else None
            if index == last and direct_out is not None:
                target = direct_out
            if target is not None and impl_out is not None:
                result = impl_out(values[left], values[right], target)
            else:
                result = impl(values[left], values[right])
            values[out_slot] = result
        if result is None:  # single-matrix chain: fix-ups do all the work
            result = values[0]
            if not self._fixups and out is None:
                result = result.copy()
        for fixup in self._fixups:
            result = fixup(result)
        if out is not None and result is not out:
            np.copyto(out, result)
            result = out
        return result

    # -- warm-replay buffer reuse --------------------------------------------

    @property
    def result_shape(self) -> Optional[tuple[int, ...]]:
        """The final result's shape (after fix-ups), known once the plan
        has replayed at least once — what a caller pre-allocates ``out``
        with."""
        return self._result_shape

    def record_buffer_shapes(
        self, values: Sequence[Optional[np.ndarray]], result: np.ndarray
    ) -> None:
        """Record step-output shapes from a completed replay.

        ``values`` is the list :meth:`replay` extended in place (inputs
        followed by one step output per op) and ``result`` the value it
        returned.  Idempotent, and benign under a race — concurrent
        replays of the same plan record identical shapes.
        """
        if self._step_shapes is not None or self._native is not None:
            return
        outputs = values[self._num_inputs :]
        if len(outputs) != len(self._ops) or any(v is None for v in outputs):
            return
        self._result_shape = tuple(result.shape)
        self._step_shapes = tuple(tuple(v.shape) for v in outputs)

    def new_arena(self) -> Optional[PlanArena]:
        """A fresh intermediate-buffer arena, or ``None`` when one cannot
        help: shapes not yet recorded (no replay yet), a natively-lowered
        plan, or no step with both an arena slot and an out-parameter
        kernel."""
        if self._step_shapes is None or self._native is not None:
            return None
        arena = PlanArena(self)
        if not any(b is not None for b in arena.buffers):
            return None
        return arena

    def replay_timed(
        self,
        values: list[np.ndarray],
        record: Callable[[float], None],
    ) -> np.ndarray:
        """:meth:`replay` with per-step kernel timing reported to ``record``.

        ``record`` receives one elapsed-seconds value per step, in step
        order — typically a plain ``list.append``, so the loop's only
        addition over :meth:`replay` is two clock reads and one C-level
        append per kernel call.  The caller feeds the recorded durations
        to its per-kernel histograms *after* the replay: batched observes
        run back-to-back cache-warm instead of paying a cache-cold
        histogram update between kernel calls.  This is the *traced*
        replay path — the dispatcher only takes it while tracing is
        enabled, so the plain :meth:`replay` loop stays clock-free.

        A natively-lowered plan (the ``c`` backend) deliberately does
        *not* take its fused call here: per-step timing is the entire
        point of tracing, and every native plan also carries the blas
        per-step lowering, so the traced loop below stays meaningful.
        """
        values.extend([None] * len(self._ops))
        result: Optional[np.ndarray] = None
        for impl, left, right, out in self._ops:
            t0 = time.perf_counter()
            result = impl(values[left], values[right])
            record(time.perf_counter() - t0)
            values[out] = result
        if result is None:  # single-matrix chain: fix-ups do all the work
            result = values[0]
            if not self._fixups:
                return result.copy()
        for fixup in self._fixups:
            result = fixup(result)
        return result

    __call__ = execute

    def describe(self) -> str:
        lines = [
            f"execution plan for {self.variant.name or '<anonymous>'} "
            f"at q={list(self.sizes)} [backend={self.backend}]"
        ]
        if self._native is not None:
            lines.append(
                "  native: fused code-generated step loop (replay path)"
            )
        for step, (_, left, right, out), cfg, routine in zip(
            self.variant.steps, self._ops, self.call_configs, self.step_routines
        ):
            lines.append(
                f"  slot[{out}] := {step.kernel.name}"
                f"(slot[{left}], slot[{right}], side={cfg.side})"
                f" -> {routine}"
            )
        for fixup in self._fixups:
            lines.append(f"  finalize: {getattr(fixup, '__name__', 'fixup')}")
        return "\n".join(lines)


def compile_plan(
    variant: Variant,
    sizes: Sequence[int],
    backend: Union[str, Backend] = "reference",
) -> ExecutionPlan:
    """Compile ``(variant, sizes)`` into a replayable :class:`ExecutionPlan`."""
    return ExecutionPlan(variant, sizes, backend=backend)

"""Bounded on-disk cache for code-generated plan modules.

The ``c`` execution backend emits each frozen plan as C source and
compiles it to a CPython extension.  Compilation is the only expensive
part (~100ms per plan vs microseconds to load), so the shared objects are
content-addressed on disk — keyed by a digest of the emitted source plus
the interpreter ABI tag, which folds in everything that matters: the plan
structure, the concrete sizes, every resolved flag, and the module name
itself.  A warm deployment therefore never re-invokes the compiler: the
second process finds ``<key>.so`` and loads it directly (asserted by the
CI bench via the ``runtime.codegen_cache`` counters).

Like the compilation disk cache (:class:`repro.serve.backends.DiskBackend`)
the tier is *bounded*: total bytes are pruned least-recently-used by
mtime, which a hit refreshes.  Publication is atomic (temp file +
``os.replace``), so concurrent processes compiling the same plan race
harmlessly — one byte-identical object wins.

Knobs: ``$REPRO_CODEGEN_CACHE_DIR`` / ``--codegen-cache-dir`` relocate
the directory (default ``~/.cache/repro-codegen``);
``$REPRO_CODEGEN_CACHE_BYTES`` / ``--codegen-cache-bytes`` bound it.
``repro cache stats`` reports this tier alongside the compilation cache,
and the ``codegen`` collector scope exposes the same numbers through the
process-wide metrics registry.
"""

from __future__ import annotations

import os
import tempfile
import threading
import time
from typing import TYPE_CHECKING, Optional

from repro.obs import get_registry

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.runtime.backends.toolchain import Toolchain

__all__ = [
    "DEFAULT_CODEGEN_CACHE_BYTES",
    "CodegenCache",
    "configure_codegen_cache",
    "get_codegen_cache",
]

#: Default byte bound of the codegen tier.  Emitted objects are ~16-20KB
#: each, so the default holds a few thousand distinct (plan, sizes) pairs.
DEFAULT_CODEGEN_CACHE_BYTES = 64 * 1024 * 1024


def _default_directory() -> str:
    env = os.environ.get("REPRO_CODEGEN_CACHE_DIR")
    if env:
        return env
    return os.path.join(os.path.expanduser("~"), ".cache", "repro-codegen")


def _default_max_bytes() -> int:
    env = os.environ.get("REPRO_CODEGEN_CACHE_BYTES")
    if env:
        try:
            return max(0, int(env))
        except ValueError:
            pass
    return DEFAULT_CODEGEN_CACHE_BYTES


class CodegenCache:
    """Content-addressed ``<key>.c`` / ``<key>.so`` pairs, LRU-by-bytes.

    The ``.c`` source is kept beside the object purely as a debugging
    artifact (and is pruned together with it); correctness only needs the
    ``.so``.
    """

    def __init__(
        self,
        directory: Optional[str] = None,
        max_bytes: Optional[int] = None,
    ):
        self.directory = os.path.abspath(directory or _default_directory())
        self.max_bytes = (
            _default_max_bytes() if max_bytes is None else max(0, int(max_bytes))
        )
        self.hits = 0
        self.misses = 0
        self.compiles = 0
        self.evictions = 0
        self._lock = threading.Lock()

    # -- the one entry point the backend uses --------------------------------

    def shared_object(
        self, key: str, source: str, toolchain: "Toolchain"
    ) -> str:
        """The compiled shared object for ``key``, compiling on a miss.

        Raises :class:`~repro.runtime.backends.toolchain.ToolchainError`
        when the compiler rejects the source (the backend turns that into
        a counted fallback, never a user-facing failure).
        """
        registry = get_registry()
        so_path = os.path.join(self.directory, f"{key}.so")
        with self._lock:
            if os.path.isfile(so_path):
                now = time.time()
                try:
                    os.utime(so_path, (now, now))
                except OSError:
                    pass
                self.hits += 1
                registry.counter("runtime.codegen_cache", outcome="hit").inc()
                return so_path
            self.misses += 1
            registry.counter("runtime.codegen_cache", outcome="miss").inc()
            os.makedirs(self.directory, exist_ok=True)
            try:
                with open(
                    os.path.join(self.directory, f"{key}.c"), "w"
                ) as handle:
                    handle.write(source)
            except OSError:
                pass  # the source is a debugging aid, not a dependency
            fd, tmp_src = tempfile.mkstemp(
                suffix=".c", prefix=f".{key}.", dir=self.directory
            )
            tmp_so = tmp_src[:-2] + ".so"
            try:
                with os.fdopen(fd, "w") as handle:
                    handle.write(source)
                start = time.perf_counter()
                toolchain.compile_shared(tmp_src, tmp_so)
                elapsed = time.perf_counter() - start
                # Atomic publish: a concurrent process compiling the same
                # key replaces the file with identical bytes.
                os.replace(tmp_so, so_path)
            finally:
                for leftover in (tmp_src, tmp_so):
                    try:
                        os.unlink(leftover)
                    except OSError:
                        pass
            self.compiles += 1
            registry.counter("runtime.codegen_compiles").inc()
            registry.histogram(
                "runtime.codegen_seconds", stage="compile"
            ).observe(elapsed)
            self._prune(protect=key)
        return so_path

    # -- bookkeeping ----------------------------------------------------------

    def _records(self) -> list[tuple[str, int, float]]:
        """``(key, bytes, mtime)`` per cached object, source bytes folded
        into its object's record so a pair prunes as one unit."""
        records: list[tuple[str, int, float]] = []
        try:
            names = os.listdir(self.directory)
        except OSError:
            return records
        for name in names:
            if not name.endswith(".so") or name.startswith("."):
                continue
            key = name[:-3]
            so_path = os.path.join(self.directory, name)
            try:
                stat = os.stat(so_path)
            except OSError:
                continue
            size = stat.st_size
            try:
                size += os.path.getsize(
                    os.path.join(self.directory, f"{key}.c")
                )
            except OSError:
                pass
            records.append((key, size, stat.st_mtime))
        return records

    def _unlink_pair(self, key: str) -> None:
        for suffix in (".so", ".c"):
            try:
                os.unlink(os.path.join(self.directory, key + suffix))
            except OSError:
                pass

    def _prune(self, protect: Optional[str] = None) -> None:
        if self.max_bytes <= 0:
            return
        records = self._records()
        total = sum(size for _, size, _ in records)
        if total <= self.max_bytes:
            return
        registry = get_registry()
        for key, size, _ in sorted(records, key=lambda rec: rec[2]):
            if total <= self.max_bytes:
                break
            if key == protect:
                continue
            self._unlink_pair(key)
            total -= size
            self.evictions += 1
            registry.counter("cache.evictions", tier="codegen").inc()

    def clear(self) -> int:
        """Remove every cached object; returns the number removed."""
        with self._lock:
            records = self._records()
            for key, _, _ in records:
                self._unlink_pair(key)
            return len(records)

    def stats(self) -> dict[str, object]:
        records = self._records()
        return {
            "directory": self.directory,
            "entries": len(records),
            "total_bytes": sum(size for _, size, _ in records),
            "max_bytes": self.max_bytes,
            "hits": self.hits,
            "misses": self.misses,
            "compiles": self.compiles,
            "evictions": self.evictions,
        }


# ---------------------------------------------------------------------------
# Process-wide singleton (one directory, one bound, one set of counters).
# ---------------------------------------------------------------------------

_cache: Optional[CodegenCache] = None
_cache_lock = threading.Lock()


def get_codegen_cache() -> CodegenCache:
    """The process-wide codegen cache (created lazily from the env)."""
    global _cache
    with _cache_lock:
        if _cache is None:
            _cache = CodegenCache()
        return _cache


def configure_codegen_cache(
    directory: Optional[str] = None, max_bytes: Optional[int] = None
) -> CodegenCache:
    """Point the process-wide cache somewhere else (CLI knobs, tests)."""
    global _cache
    with _cache_lock:
        _cache = CodegenCache(directory=directory, max_bytes=max_bytes)
        return _cache


def _codegen_snapshot() -> dict[str, object]:
    with _cache_lock:
        cache = _cache
    if cache is None:
        return {"configured": False}
    snapshot: dict[str, object] = {"configured": True}
    snapshot.update(cache.stats())
    return snapshot


get_registry().register_collector("codegen", _codegen_snapshot)

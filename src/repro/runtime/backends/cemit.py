"""The ``c`` execution backend: frozen plans emitted as native C step loops.

PR 6's ``blas`` backend got the kernel *math* to BLAS speed, but every
plan step still pays a Python round-trip — interpreter dispatch, scipy
wrapper argument parsing, result allocation — which dominates on small
and medium operands.  This backend removes the per-step tax entirely:
each frozen :class:`~repro.runtime.plan.ExecutionPlan` is code-generated
as one C function that walks the whole step list natively, calling
BLAS/LAPACK through function pointers harvested from
``scipy.linalg.cython_blas`` / ``cython_lapack`` PyCapsules.  One Python
call per *replay* (a METH_FASTCALL CPython extension entry), zero per
step.

Everything dynamic is resolved to constants at emit time:

* transpose / side / triangularity flags, via the same algebra as
  :mod:`repro.runtime.backends.blas` (a C-contiguous stored array is
  re-presented as its Fortran-contiguous transpose with the flags
  flipped — no copies);
* all dimensions and leading dimensions (the plan is already specialized
  to one size vector);
* buffer addressing: inputs map to the call's buffer arguments,
  intermediates to offsets in one per-call ``malloc``'d workspace (so
  plans stay stateless and replay concurrently), the final step writes
  straight into the caller's output array whenever its natural layout
  allows.

The emitted module is compiled lazily with the discovered toolchain
(:mod:`~repro.runtime.backends.toolchain`) and cached content-addressed
in the bounded on-disk codegen cache
(:mod:`repro.runtime.codegen_cache`) — a warm deployment never invokes
the compiler.  Function-pointer addresses are per-process, so every load
re-harvests the capsules and passes them to the module's ``init``.

Degradation is total and silent: no toolchain, no harvestable capsules,
an unsupported step (the diagonal solves, configurations the routines
cannot express), a compiler rejection, or a load failure all fall back
to the ``blas`` lowering the plan already carries (``specialize`` here
delegates to :class:`~repro.runtime.backends.blas.BlasBackend`), counted
per reason in the ``runtime.codegen_fallbacks`` metric and logged at
info level.  A fallen-back plan reports ``backend == "blas"``.
"""

from __future__ import annotations

import ctypes
import hashlib
import importlib.machinery
import importlib.util
import logging
import sys
import threading
import time
from typing import TYPE_CHECKING, Callable, NamedTuple, Optional

import numpy as np

from repro.errors import ExecutionError
from repro.obs import get_registry
from repro.runtime.backends.base import Backend, LoweredKernel
from repro.runtime.backends.blas import (
    BlasBackend,
    _structured_position,
    blas_available,
)
from repro.runtime.backends.toolchain import (
    Toolchain,
    ToolchainError,
    discover_toolchain,
)
from repro.runtime.codegen_cache import get_codegen_cache

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.runtime.executor import KernelCallConfig
    from repro.runtime.plan import ExecutionPlan

__all__ = ["CEmitBackend", "cemit_available"]

logger = logging.getLogger("repro.runtime.cemit")

#: Every routine an emitted module may call, in capsule-harvest order.
_ROUTINES = (
    "dgemm",
    "dsymm",
    "dtrmm",
    "dtrsm",
    "dposv",
    "dsysv",
    "dgetrf",
    "dgetrs",
)

#: C function-pointer typedef per routine (the Fortran calling convention
#: scipy's cython capsules expose: everything by pointer, 32-bit ints).
_SIGNATURES = {
    "dgemm": (
        "char*, char*, int*, int*, int*, double*, double*, int*, "
        "double*, int*, double*, double*, int*"
    ),
    "dsymm": (
        "char*, char*, int*, int*, double*, double*, int*, double*, "
        "int*, double*, double*, int*"
    ),
    "dtrmm": (
        "char*, char*, char*, char*, int*, int*, double*, double*, "
        "int*, double*, int*"
    ),
    "dtrsm": (
        "char*, char*, char*, char*, int*, int*, double*, double*, "
        "int*, double*, int*"
    ),
    "dposv": "char*, int*, int*, double*, int*, double*, int*, int*",
    "dsysv": (
        "char*, int*, int*, double*, int*, int*, double*, int*, "
        "double*, int*, int*"
    ),
    "dgetrf": "int*, int*, double*, int*, int*, int*",
    "dgetrs": (
        "char*, int*, int*, double*, int*, int*, double*, int*, int*"
    ),
}


# ---------------------------------------------------------------------------
# PyCapsule harvest: routine name -> function-pointer address (per process).
# ---------------------------------------------------------------------------

_capsule_get_pointer = ctypes.pythonapi.PyCapsule_GetPointer
_capsule_get_pointer.restype = ctypes.c_void_p
_capsule_get_pointer.argtypes = [ctypes.py_object, ctypes.c_char_p]
_capsule_get_name = ctypes.pythonapi.PyCapsule_GetName
_capsule_get_name.restype = ctypes.c_char_p
_capsule_get_name.argtypes = [ctypes.py_object]

_addresses: Optional[tuple[Optional[dict[str, int]]]] = None
_addresses_lock = threading.Lock()


def _harvest_addresses() -> Optional[dict[str, int]]:
    """Addresses of every routine in :data:`_ROUTINES`, or ``None``.

    The capsules live in ``__pyx_capi__`` of scipy's cython wrapper
    modules; their addresses are process-local, so the harvest runs once
    per process and is re-fed to every loaded module's ``init``.
    """
    global _addresses
    with _addresses_lock:
        if _addresses is not None:
            return _addresses[0]
        found: dict[str, int] = {}
        try:
            from scipy.linalg import cython_blas, cython_lapack

            for module in (cython_blas, cython_lapack):
                capi = getattr(module, "__pyx_capi__", {})
                for name in _ROUTINES:
                    capsule = capi.get(name)
                    if capsule is not None and name not in found:
                        address = _capsule_get_pointer(
                            capsule, _capsule_get_name(capsule)
                        )
                        if address:
                            found[name] = address
        except Exception:  # pragma: no cover - scipy-less environments
            found = {}
        result = found if all(name in found for name in _ROUTINES) else None
        _addresses = (result,)
        return result


def cemit_available() -> bool:
    """Whether this process can emit, compile, and run native plans."""
    return (
        blas_available()
        and _harvest_addresses() is not None
        and discover_toolchain() is not None
    )


# ---------------------------------------------------------------------------
# Emission: one plan -> one C translation unit.
# ---------------------------------------------------------------------------


class _Unsupported(Exception):
    """The emitter cannot express a step; the plan falls back whole."""

    def __init__(self, reason: str):
        super().__init__(reason)
        self.reason = reason


class _Buf(NamedTuple):
    """One buffer slot's emit-time layout.

    The physical buffer is read Fortran-contiguously with dimensions
    ``(pr, pc)`` and leading dimension ``pr``; the *logical* stored value
    is its transpose iff ``t`` (a C-contiguous stored array is exactly
    its F-contiguous transpose, so inputs start with ``t=True``).
    """

    pr: int
    pc: int
    t: bool
    expr: str

    @property
    def logical(self) -> tuple[int, int]:
        return (self.pc, self.pr) if self.t else (self.pr, self.pc)


class _StepSpec(NamedTuple):
    """One step's decided emission: output layout + line generator."""

    pr: int
    pc: int
    t_out: bool
    #: The physical output equals its own transpose (diagonal results),
    #: so either layout may serve as the final answer directly.
    sym_out: bool
    make: Callable[[str], list[str]]


def _memcpy(dst: str, src: str, doubles: int) -> str:
    return f"memcpy({dst}, {src}, (size_t){doubles} * sizeof(double));"


def _transpose_copy(
    dst: str, src: str, rows: int, cols: int, src_ld: int
) -> str:
    """``dst`` (rows x cols, F-order) := transpose of ``src`` (ld src_ld)."""
    return (
        "{ int i, j; "
        f"for (j = 0; j < {cols}; j++) "
        f"for (i = 0; i < {rows}; i++) "
        f"{dst}[i + (size_t)j * {rows}] = "
        f"{src}[j + (size_t)i * {src_ld}]; }}"
    )


def _tn(flag: bool) -> str:
    return "'T'" if flag else "'N'"


def _ul(lower: bool) -> str:
    return "'L'" if lower else "'U'"


def _lapack_check(step: int, routine: str) -> str:
    return (
        f"if (info != 0) {{ err_step = {step}; err_info = info; "
        f'err_routine = "{routine}"; goto native_done; }}'
    )


class _Emitter:
    """Walks a plan's steps, producing the body of ``cg_run``."""

    def __init__(self, plan: "ExecutionPlan"):
        self.plan = plan
        self.lines: list[str] = []
        self.routines: list[str] = []
        self.ws_doubles = 0
        self.has_solve = False

    def routine(self, name: str) -> str:
        if name not in self.routines:
            self.routines.append(name)
        return f"p_{name}"

    def alloc(self, doubles: int) -> str:
        offset = self.ws_doubles
        self.ws_doubles += doubles
        return f"(ws + {offset})"

    def alloc_ints(self, count: int) -> str:
        offset = self.ws_doubles
        self.ws_doubles += (count + 1) // 2
        return f"((int*)(ws + {offset}))"

    # -- per-kernel emission -------------------------------------------------

    def _gemm(
        self, i: int, cfg: "KernelCallConfig", l: _Buf, r: _Buf, last: bool
    ) -> _StepSpec:
        el = cfg.left_trans != l.t
        er = cfg.right_trans != r.t
        m, k = (l.pc, l.pr) if el else (l.pr, l.pc)
        _, n = (r.pc, r.pr) if er else (r.pr, r.pc)
        gemm = self.routine("dgemm")
        if last:
            # Emit the transposed product so the final dgemm writes the
            # caller's C-ordered output buffer directly: C^T = op(B)^T op(A)^T.
            def make(dst: str) -> list[str]:
                return [
                    f"char ta = {_tn(not er)}, tb = {_tn(not el)};",
                    f"int m = {n}, n = {m}, k = {k};",
                    f"int lda = {r.pr}, ldb = {l.pr}, ldc = {n};",
                    "double one = 1.0, zero = 0.0;",
                    f"{gemm}(&ta, &tb, &m, &n, &k, &one, {r.expr}, &lda, "
                    f"{l.expr}, &ldb, &zero, {dst}, &ldc);",
                ]

            return _StepSpec(n, m, True, False, make)

        def make(dst: str) -> list[str]:
            return [
                f"char ta = {_tn(el)}, tb = {_tn(er)};",
                f"int m = {m}, n = {n}, k = {k};",
                f"int lda = {l.pr}, ldb = {r.pr}, ldc = {m};",
                "double one = 1.0, zero = 0.0;",
                f"{gemm}(&ta, &tb, &m, &n, &k, &one, {l.expr}, &lda, "
                f"{r.expr}, &ldb, &zero, {dst}, &ldc);",
            ]

        return _StepSpec(m, n, False, False, make)

    def _symm(
        self, i: int, cfg: "KernelCallConfig", l: _Buf, r: _Buf, last: bool
    ) -> _StepSpec:
        side_left = cfg.side == "left"
        s, g = (l, r) if side_left else (r, l)
        g_trans = cfg.right_trans if side_left else cfg.left_trans
        eg = g_trans != g.t
        # The symmetric operand equals its transpose: its layout flag is
        # immaterial and 'U' always names a valid stored triangle.  A
        # transposed general operand computes the transposed product with
        # the side flipped (t_out records it) — dsymm has no transb.
        phys_side = ("'L'" if side_left else "'R'") if not eg else (
            "'R'" if side_left else "'L'"
        )
        m, n = g.pr, g.pc
        symm = self.routine("dsymm")

        def make(dst: str) -> list[str]:
            return [
                f"char side = {phys_side}, uplo = 'U';",
                f"int m = {m}, n = {n};",
                f"int lda = {s.pr}, ldb = {g.pr}, ldc = {m};",
                "double one = 1.0, zero = 0.0;",
                f"{symm}(&side, &uplo, &m, &n, &one, {s.expr}, &lda, "
                f"{g.expr}, &ldb, &zero, {dst}, &ldc);",
            ]

        return _StepSpec(m, n, eg, False, make)

    def _trmm(
        self, i: int, cfg: "KernelCallConfig", l: _Buf, r: _Buf, last: bool
    ) -> _StepSpec:
        t_pos = _structured_position(cfg)
        if t_pos is None:
            raise _Unsupported("unsupported-step")
        t_left = t_pos == "left"
        tb, g = (l, r) if t_left else (r, l)
        t_trans = cfg.left_trans if t_left else cfg.right_trans
        t_lower = cfg.left_lower if t_left else cfg.right_lower
        g_trans = cfg.right_trans if t_left else cfg.left_trans
        et = t_trans != tb.t
        lower = bool(t_lower) != tb.t  # transposed view flips the triangle
        eg = g_trans != g.t
        phys_side = ("'L'" if t_left else "'R'") if not eg else (
            "'R'" if t_left else "'L'"
        )
        transa = et if not eg else not et
        m, n = g.pr, g.pc
        trmm = self.routine("dtrmm")

        def make(dst: str) -> list[str]:
            return [
                # dtrmm multiplies in place: the operand buffers must
                # survive the call, so B is the output slot's private copy.
                _memcpy(dst, g.expr, m * n),
                f"char side = {phys_side}, uplo = {_ul(lower)}, "
                f"ta = {_tn(transa)}, diag = 'N';",
                f"int m = {m}, n = {n};",
                f"int lda = {tb.pr}, ldb = {m};",
                "double one = 1.0;",
                f"{trmm}(&side, &uplo, &ta, &diag, &m, &n, &one, "
                f"{tb.expr}, &lda, {dst}, &ldb);",
            ]

        return _StepSpec(m, n, eg, False, make)

    def _trsm(
        self, i: int, cfg: "KernelCallConfig", l: _Buf, r: _Buf, last: bool
    ) -> _StepSpec:
        side_left = cfg.side == "left"
        c, rhs = (l, r) if side_left else (r, l)
        c_trans = cfg.left_trans if side_left else cfg.right_trans
        c_lower = cfg.left_lower if side_left else cfg.right_lower
        r_trans = cfg.right_trans if side_left else cfg.left_trans
        if c_lower is None:
            raise _Unsupported("unsupported-step")
        ec = c_trans != c.t
        lower = bool(c_lower) != c.t
        er = r_trans != rhs.t
        phys_side = ("'L'" if side_left else "'R'") if not er else (
            "'R'" if side_left else "'L'"
        )
        transa = ec if not er else not ec
        m, n = rhs.pr, rhs.pc
        trsm = self.routine("dtrsm")

        def make(dst: str) -> list[str]:
            return [
                _memcpy(dst, rhs.expr, m * n),
                f"char side = {phys_side}, uplo = {_ul(lower)}, "
                f"ta = {_tn(transa)}, diag = 'N';",
                f"int m = {m}, n = {n};",
                f"int lda = {c.pr}, ldb = {m};",
                "double one = 1.0;",
                f"{trsm}(&side, &uplo, &ta, &diag, &m, &n, &one, "
                f"{c.expr}, &lda, {dst}, &ldb);",
            ]

        return _StepSpec(m, n, er, False, make)

    def _dimm(
        self, i: int, cfg: "KernelCallConfig", l: _Buf, r: _Buf, last: bool
    ) -> _StepSpec:
        # The diag flags locate the diagonal operand exactly (``side``
        # marks the structured operand, which is the *other* one for
        # ``L * D`` / ``S * D`` — see blas._lower_dimm).
        if cfg.left_diag or cfg.right_diag:
            diag_left = cfg.left_diag
        else:
            diag_left = cfg.side == "left"
        d, g = (l, r) if diag_left else (r, l)
        g_trans = cfg.right_trans if diag_left else cfg.left_trans
        eg = g_trans != g.t
        # Emit in the general operand's own layout (t_out = eg): the scale
        # then runs down physical rows or columns with unit stride.
        row_scale = diag_left != eg
        m, n = g.pr, g.pc
        stride = d.pr + 1

        def make(dst: str) -> list[str]:
            if row_scale:
                body = (
                    f"for (j = 0; j < {n}; j++) "
                    f"for (i = 0; i < {m}; i++) "
                    f"{dst}[i + (size_t)j * {m}] = "
                    f"{d.expr}[(size_t)i * {stride}] * "
                    f"{g.expr}[i + (size_t)j * {m}];"
                )
            else:
                body = (
                    f"for (j = 0; j < {n}; j++) {{ "
                    f"double s = {d.expr}[(size_t)j * {stride}]; "
                    f"for (i = 0; i < {m}; i++) "
                    f"{dst}[i + (size_t)j * {m}] = "
                    f"s * {g.expr}[i + (size_t)j * {m}]; }}"
                )
            return ["int i, j;", body]

        return _StepSpec(m, n, eg, False, make)

    def _didimm(
        self, i: int, cfg: "KernelCallConfig", l: _Buf, r: _Buf, last: bool
    ) -> _StepSpec:
        n = l.pr
        ls, rs = l.pr + 1, r.pr + 1

        def make(dst: str) -> list[str]:
            return [
                "int k;",
                f"memset({dst}, 0, (size_t){n * n} * sizeof(double));",
                f"for (k = 0; k < {n}; k++) "
                f"{dst}[(size_t)k * {n + 1}] = "
                f"{l.expr}[(size_t)k * {ls}] * {r.expr}[(size_t)k * {rs}];",
            ]

        return _StepSpec(n, n, False, True, make)

    def _factor_solve(
        self,
        i: int,
        cfg: "KernelCallConfig",
        l: _Buf,
        r: _Buf,
        family: str,
    ) -> _StepSpec:
        """dposv / dsysv / dgetrf+dgetrs: copy-factor the coefficient,
        materialize the right-hand side in the layout the solve needs."""
        self.has_solve = True
        side_left = cfg.side == "left"
        c, rhs = (l, r) if side_left else (r, l)
        c_trans = cfg.left_trans if side_left else cfg.right_trans
        r_trans = cfg.right_trans if side_left else cfg.left_trans
        ec = c_trans != c.t
        er = r_trans != rhs.t
        na = c.pr
        # side=left solves op(A) X = R and needs R physical in B;
        # side=right solves op(A)^T X^T = R^T and needs R^T physical —
        # either way the buffer already holds the right presentation
        # exactly when er == (not side_left), else one transposed copy
        # (the scipy path pays the same copy inside the wrapper).
        direct = er == (not side_left)
        brow, bcol = (rhs.pr, rhs.pc) if direct else (rhs.pc, rhs.pr)
        acopy = self.alloc(na * na)
        if family == "dposv":
            solve = self.routine("dposv")
            extra_decl: list[str] = []
            calls = [
                f"{solve}(&uplo, &nn, &nrhs, {acopy}, &lda, DST, &ldb, "
                "&info);",
                _lapack_check(i, "dposv"),
            ]
        elif family == "dsysv":
            solve = self.routine("dsysv")
            ipiv = self.alloc_ints(na)
            work = self.alloc(64 * na)
            extra_decl = [f"int lwork = {64 * na};"]
            calls = [
                f"{solve}(&uplo, &nn, &nrhs, {acopy}, &lda, {ipiv}, DST, "
                f"&ldb, {work}, &lwork, &info);",
                _lapack_check(i, "dsysv"),
            ]
        else:  # dgetrf + dgetrs
            getrf = self.routine("dgetrf")
            getrs = self.routine("dgetrs")
            ipiv = self.alloc_ints(na)
            trans = (ec if side_left else not ec)
            extra_decl = [f"char tr = {_tn(trans)};"]
            calls = [
                f"{getrf}(&nn, &nn, {acopy}, &lda, {ipiv}, &info);",
                _lapack_check(i, "dgetrf"),
                f"{getrs}(&tr, &nn, &nrhs, {acopy}, &lda, {ipiv}, DST, "
                "&ldb, &info);",
                _lapack_check(i, "dgetrs"),
            ]

        def make(dst: str) -> list[str]:
            lines = [
                f"char uplo = 'U';",
                f"int nn = {na}, nrhs = {bcol}, lda = {na}, ldb = {brow}, "
                "info = 0;",
                *extra_decl,
                # The factorization overwrites its matrix: factor a
                # workspace copy, never an operand buffer.
                _memcpy(acopy, c.expr, na * na),
                _memcpy(dst, rhs.expr, rhs.pr * rhs.pc)
                if direct
                else _transpose_copy(dst, rhs.expr, brow, bcol, rhs.pr),
            ]
            lines += [line.replace("DST", dst) for line in calls]
            return lines

        return _StepSpec(brow, bcol, not side_left, False, make)


_PRODUCT_EMITTERS = {
    "GEMM": "_gemm",
    "SYMM": "_symm",
    "SYSYMM": "_symm",
    "TRMM": "_trmm",
    "TRTRMM": "_trmm",
    "TRSYMM": "_trmm",
    "DIMM": "_dimm",
    "DIDIMM": "_didimm",
    "TRSM": "_trsm",
    "TRSYSV": "_trsm",
    "TRTRSV": "_trsm",
}

_SOLVE_FAMILIES = {
    "POGESV": "dposv",
    "POSYSV": "dposv",
    "POTRSV": "dposv",
    "SYGESV": "dsysv",
    "SYSYSV": "dsysv",
    "SYTRSV": "dsysv",
    "GEGESV": "dgetrs",
    "GESYSV": "dgetrs",
    "GETRSV": "dgetrs",
}


def emit_plan_source(
    plan: "ExecutionPlan",
) -> tuple[str, str, list[str], tuple[int, int]]:
    """Emit one plan as C: ``(source, module_name, routines, out_shape)``.

    Raises :class:`_Unsupported` for steps outside the emitter's kernel
    table (the diagonal solves, configurations without the flags the
    routines need) — callers fall the whole plan back to ``blas``.
    """
    steps = plan.variant.steps
    if not steps:
        raise _Unsupported("no-steps")
    n_inputs = plan.chain.n
    em = _Emitter(plan)

    bufs: list[_Buf] = [
        # A C-contiguous stored (r, c) array is the F-contiguous (c, r)
        # transpose of the logical value: t=True, ld = c.
        _Buf(c, r, True, f"in{i}")
        for i, (r, c) in enumerate(plan.expected_shapes)
    ]

    def slot(ref) -> int:
        kind, index = ref
        return index if kind == "matrix" else n_inputs + index

    last = len(steps) - 1
    step_blocks: list[str] = []
    for i, (step, cfg) in enumerate(zip(steps, plan.call_configs)):
        l, r = bufs[slot(step.left_ref)], bufs[slot(step.right_ref)]
        kernel = step.kernel.name
        family = _SOLVE_FAMILIES.get(kernel)
        if family is not None:
            spec = em._factor_solve(i, cfg, l, r, family)
        else:
            method = _PRODUCT_EMITTERS.get(kernel)
            if method is None:
                raise _Unsupported("unsupported-step")
            spec = getattr(em, method)(i, cfg, l, r, i == last)
        if i == last and (spec.t_out or spec.sym_out):
            # The caller's output array is C-ordered (r, c): as an F
            # buffer it wants the transposed (or symmetric) result — the
            # final step can produce it in place, no store pass.
            dst = "outbuf"
        else:
            dst = em.alloc(spec.pr * spec.pc)
        body = "\n".join(f"      {line}" for line in spec.make(dst))
        step_blocks.append(
            f"    {{ /* step {i}: {kernel} -> "
            f"{family or _PRODUCT_EMITTERS[kernel].lstrip('_')} */\n"
            f"{body}\n    }}"
        )
        bufs.append(_Buf(spec.pr, spec.pc, spec.t_out, dst))

    final = bufs[-1]
    out_r, out_c = final.logical
    if not (final.t or final.expr == "outbuf"):
        # Natural layout disagreed with the output array: one transposed
        # store pass (outbuf is the F-contiguous (c, r) view of the
        # C-ordered result).
        step_blocks.append(
            "    { /* store: transpose into the output array */\n"
            "      "
            + _transpose_copy("outbuf", final.expr, out_c, out_r, final.pr)
            + "\n    }"
        )

    source = _render_module(
        em, plan, n_inputs, (out_r, out_c), step_blocks
    )
    digest = hashlib.sha256(
        f"{sys.implementation.cache_tag}\0{source}".encode()
    ).hexdigest()[:16]
    modname = f"_repro_cg_{digest}"
    return source.replace("@MOD@", modname), modname, em.routines, (
        out_r,
        out_c,
    )


def _render_module(
    em: _Emitter,
    plan: "ExecutionPlan",
    n_inputs: int,
    out_shape: tuple[int, int],
    step_blocks: list[str],
) -> str:
    nbuf = n_inputs + 1
    out_doubles = out_shape[0] * out_shape[1]
    typedefs = "\n".join(
        f"typedef void (*{name}_fn)({_SIGNATURES[name]});\n"
        f"static {name}_fn p_{name};"
        for name in em.routines
    )
    assigns = "\n".join(
        f"    p_{name} = ({name}_fn)PyLong_AsVoidPtr("
        f"PyTuple_GET_ITEM(addrs, {k}));"
        for k, name in enumerate(em.routines)
    )
    len_checks = []
    for i, (r, c) in enumerate(plan.expected_shapes):
        len_checks.append(
            f"    if (buf[{i}].len != (Py_ssize_t){r * c} * 8) "
            f"{{ PyErr_Format(PyExc_ValueError, "
            f'"operand {i}: expected {r}x{c} float64"); goto fail; }}'
        )
    len_checks.append(
        f"    if (buf[{n_inputs}].len != (Py_ssize_t){out_doubles} * 8) "
        f"{{ PyErr_SetString(PyExc_ValueError, "
        f'"output: expected {out_shape[0]}x{out_shape[1]} float64"); '
        "goto fail; }"
    )
    input_decls = "\n".join(
        f"    double* in{i} = (double*)buf[{i}].buf;"
        for i in range(n_inputs)
    )
    ws_alloc = (
        f"    ws = (double*)malloc((size_t){em.ws_doubles} * "
        "sizeof(double));\n"
        "    if (ws == NULL) { PyErr_NoMemory(); goto fail; }"
        if em.ws_doubles
        else "    (void)ws;"
    )
    plan_name = (plan.variant.name or "<anonymous>").replace('"', "'")
    sizes = ",".join(str(s) for s in plan.sizes)
    steps = "\n".join(step_blocks)
    return f"""/* Generated by repro.runtime.backends.cemit
 * plan: {plan_name} at q=[{sizes}]
 * One native call replays the whole step list; BLAS/LAPACK is reached
 * through function pointers injected per process via init().
 */
#include <Python.h>
#include <stdlib.h>
#include <string.h>

{typedefs}

static PyObject* cg_init(PyObject* self, PyObject* addrs) {{
    if (!PyTuple_Check(addrs) || PyTuple_GET_SIZE(addrs) != {len(em.routines)}) {{
        PyErr_SetString(PyExc_TypeError,
                        "init expects a tuple of {len(em.routines)} addresses");
        return NULL;
    }}
{assigns}
    if (PyErr_Occurred()) return NULL;
    Py_RETURN_NONE;
}}

static PyObject* cg_run(PyObject* self, PyObject* const* args,
                        Py_ssize_t nargs) {{
    Py_buffer buf[{nbuf}];
    int held = 0;
    double* ws = NULL;
    int err_step = -1, err_info = 0;
    const char* err_routine = NULL;
    if (nargs != {nbuf}) {{
        PyErr_SetString(PyExc_TypeError,
                        "run expects {n_inputs} operands plus the output");
        return NULL;
    }}
    for (; held < {n_inputs}; held++)
        if (PyObject_GetBuffer(args[held], &buf[held], PyBUF_SIMPLE) < 0)
            goto fail;
    if (PyObject_GetBuffer(args[{n_inputs}], &buf[{n_inputs}],
                           PyBUF_WRITABLE) < 0)
        goto fail;
    held++;
{chr(10).join(len_checks)}
{ws_alloc}
    {{
{input_decls}
    double* outbuf = (double*)buf[{n_inputs}].buf;
    Py_BEGIN_ALLOW_THREADS
{steps}
    goto native_done;
native_done: ;
    Py_END_ALLOW_THREADS
    }}
    if (err_step >= 0) {{
        PyErr_Format(PyExc_RuntimeError,
                     "plan step %d: %s failed (info=%d)",
                     err_step, err_routine, err_info);
        goto fail;
    }}
    free(ws);
    while (held) PyBuffer_Release(&buf[--held]);
    Py_RETURN_NONE;
fail:
    free(ws);
    while (held) PyBuffer_Release(&buf[--held]);
    return NULL;
}}

static PyMethodDef cg_methods[] = {{
    {{"init", (PyCFunction)cg_init, METH_O, NULL}},
    {{"run", (PyCFunction)(void*)cg_run, METH_FASTCALL, NULL}},
    {{NULL, NULL, 0, NULL}}
}};

static struct PyModuleDef cg_module = {{
    PyModuleDef_HEAD_INIT, "@MOD@", NULL, -1, cg_methods
}};

PyMODINIT_FUNC PyInit_@MOD@(void) {{
    return PyModule_Create(&cg_module);
}}
"""


# ---------------------------------------------------------------------------
# Loading and the per-plan native callable.
# ---------------------------------------------------------------------------

#: module name -> bound ``run`` of an already-initialized module.  Shared
#: objects cannot be unloaded; one load serves every plan that hashes to
#: the same emission.
_loaded: dict[str, Callable] = {}
_loaded_lock = threading.Lock()


def _load_native_run(
    modname: str, so_path: str, routines: list[str]
) -> Callable:
    with _loaded_lock:
        run = _loaded.get(modname)
        if run is not None:
            return run
        loader = importlib.machinery.ExtensionFileLoader(modname, so_path)
        spec = importlib.util.spec_from_file_location(
            modname, so_path, loader=loader
        )
        module = importlib.util.module_from_spec(spec)
        spec.loader.exec_module(module)
        addresses = _harvest_addresses()
        if addresses is None:  # pragma: no cover - guarded by lower_plan
            raise ExecutionError("BLAS capsule addresses unavailable")
        module.init(tuple(addresses[name] for name in routines))
        run = module.run
        _loaded[modname] = run
        return run


class _NativePlan:
    """The compiled plan's replay callable: one native call, one output.

    A fresh output array per call keeps plans stateless (concurrent
    replays share nothing but the read-only input buffers and the
    module's code).  The retry path re-presents inputs C-contiguously —
    the one copy non-contiguous callers pay, exactly where the blas
    backend pays ``np.asfortranarray``.
    """

    __slots__ = ("_run", "_out_shape")

    def __init__(self, run: Callable, out_shape: tuple[int, int]):
        self._run = run
        self._out_shape = out_shape

    def __call__(self, values: list[np.ndarray]) -> np.ndarray:
        out = np.empty(self._out_shape, dtype=np.float64)
        try:
            try:
                self._run(*values, out)
            except (BufferError, ValueError):
                self._run(
                    *[
                        np.ascontiguousarray(v, dtype=np.float64)
                        for v in values
                    ],
                    out,
                )
        except RuntimeError as exc:  # LAPACK info != 0, translated
            raise ExecutionError(str(exc)) from exc
        return out


# ---------------------------------------------------------------------------
# The backend.
# ---------------------------------------------------------------------------


class CEmitBackend(Backend):
    """Code-generate whole plans to native step loops; lower steps via blas.

    ``specialize`` delegates to :class:`BlasBackend`, so every plan this
    backend compiles also carries the per-step blas lowering — that is
    the traced-replay path (``replay_timed``) and the ready-made fallback
    when native lowering declines.
    """

    name = "c"
    fallback_name = "blas"

    def __init__(self):
        self._blas = BlasBackend()

    def specialize(
        self, kernel_name: str, cfg: "KernelCallConfig"
    ) -> LoweredKernel:
        return self._blas.specialize(kernel_name, cfg)

    def lower_plan(self, plan: "ExecutionPlan") -> Optional[Callable]:
        if not blas_available():
            return self._fall_back("no-capsules", plan)
        if _harvest_addresses() is None:
            return self._fall_back("no-capsules", plan)
        toolchain = discover_toolchain()
        if toolchain is None:
            return self._fall_back("no-toolchain", plan)
        registry = get_registry()
        start = time.perf_counter()
        try:
            source, modname, routines, out_shape = emit_plan_source(plan)
        except _Unsupported as exc:
            return self._fall_back(exc.reason, plan)
        registry.histogram("runtime.codegen_seconds", stage="emit").observe(
            time.perf_counter() - start
        )
        try:
            so_path = get_codegen_cache().shared_object(
                modname, source, toolchain
            )
        except ToolchainError as exc:
            logger.info("codegen compile failed: %s", exc)
            return self._fall_back("compile-error", plan)
        start = time.perf_counter()
        try:
            run = _load_native_run(modname, so_path, routines)
        except Exception as exc:
            logger.info("codegen load failed for %s: %s", modname, exc)
            return self._fall_back("load-error", plan)
        registry.histogram("runtime.codegen_seconds", stage="load").observe(
            time.perf_counter() - start
        )
        return _NativePlan(run, out_shape)

    @staticmethod
    def _fall_back(reason: str, plan: "ExecutionPlan") -> None:
        get_registry().counter(
            "runtime.codegen_fallbacks", reason=reason
        ).inc()
        logger.info(
            "c backend fell back to blas for %s at q=%s (%s)",
            plan.variant.name or "<anonymous>",
            list(plan.sizes),
            reason,
        )
        return None

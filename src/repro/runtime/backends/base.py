"""The execution-backend strategy interface.

A :class:`Backend` decides *how* a frozen kernel call executes: given a
kernel name and its :class:`~repro.runtime.executor.KernelCallConfig`
(both fixed at plan-compile time), it returns a :class:`LoweredKernel` —
a direct ``(left, right) -> result`` callable plus the name of the
routine the call lowered to.  :class:`~repro.runtime.plan.ExecutionPlan`
asks its backend once per step and replays the returned callables; the
backend never sees per-call state, so one lowered kernel may serve
concurrent replays.

Two backends ship: ``reference`` (the numpy/scipy reference
implementations, structured operands executed densely) and ``blas``
(:mod:`repro.runtime.backends.blas`, direct ``scipy.linalg.blas`` /
``lapack`` calls with the structure flags pre-resolved).  The dispatcher
adds a third *strategy*, ``auto``, which is not a backend of its own: it
compiles a plan per concrete backend and serves the measured winner.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import TYPE_CHECKING, Callable, NamedTuple, Optional

import numpy as np

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.runtime.executor import KernelCallConfig
    from repro.runtime.plan import ExecutionPlan

#: Routine label of a kernel the backend could not lower and delegated to
#: the reference implementation instead.
FALLBACK_ROUTINE = "reference fallback"


class LoweredKernel(NamedTuple):
    """One kernel call lowered for a frozen configuration."""

    #: Direct ``(stored_left, stored_right) -> result`` callable.
    impl: Callable[[np.ndarray, np.ndarray], np.ndarray]
    #: Human-readable routine the call lowered to (``"dgemm"``,
    #: ``"dtrmm"``, ..., ``"reference"``, or :data:`FALLBACK_ROUTINE`).
    routine: str


class Backend(ABC):
    """Strategy that lowers frozen kernel calls to executable routines."""

    #: The registry name (``"reference"``, ``"blas"``, or ``"c"``).
    name: str = ""

    #: Backend name a plan should *report* when :meth:`lower_plan`
    #: declines — ``None`` for backends whose per-step lowering is the
    #: whole story.
    fallback_name: Optional[str] = None

    @abstractmethod
    def specialize(
        self, kernel_name: str, cfg: "KernelCallConfig"
    ) -> LoweredKernel:
        """Lower one kernel call for a frozen configuration.

        Must never raise for a kernel the reference substrate implements:
        configurations the backend cannot express are returned as a
        reference-implementation :class:`LoweredKernel` labelled
        :data:`FALLBACK_ROUTINE`, keeping plan compilation total.
        """

    def specialize_out(
        self, kernel_name: str, cfg: "KernelCallConfig"
    ) -> Optional[Callable[[np.ndarray, np.ndarray, np.ndarray], np.ndarray]]:
        """Optionally lower one kernel call to an out-parameter form.

        The returned callable computes ``(left, right)`` into the
        caller-owned ``out`` buffer (never aliasing an operand) and
        returns it — what :class:`~repro.runtime.plan.PlanArena`-backed
        warm replays use to run allocation-free.  ``None`` — the default
        — means "no in-place form for this kernel/config"; the plan then
        keeps the allocating implementation for that step.
        """
        return None

    def lower_plan(
        self, plan: "ExecutionPlan"
    ) -> Optional[Callable[[list[np.ndarray]], np.ndarray]]:
        """Optionally lower a *whole* plan to one fused callable.

        Called once at plan-compile time, after the per-step lowering.
        Returning a callable replaces the plan's step loop on the
        untraced :meth:`~repro.runtime.plan.ExecutionPlan.replay` path
        (fix-ups still run in Python afterwards); returning ``None`` —
        the default — keeps the per-step loop, and the plan reports
        :attr:`fallback_name` as its backend when set.  Implementations
        must degrade by returning ``None``, never by raising.
        """
        return None

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<{type(self).__name__} {self.name!r}>"

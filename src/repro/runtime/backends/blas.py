"""The native BLAS execution backend: frozen kernel calls lowered to
``scipy.linalg.blas`` / ``scipy.linalg.lapack`` routines.

The compiler tracks operand properties (triangular, symmetric, SPD,
diagonal, transposed) precisely so the cheap *structured* kernel can be
picked — but the reference backend still executes every product as a full
dense matmul and every solve through generic scipy entry points.  This
module makes the structured choice pay off at execution time: each frozen
:class:`~repro.runtime.executor.KernelCallConfig` is lowered **once, at
plan-compile time** to a direct BLAS/LAPACK call with the transpose /
side / triangularity algebra pre-resolved into the routine's own flags.

Contiguity and copies
---------------------
BLAS is column-major.  A C-contiguous (numpy-default) array ``a`` is the
same memory as the Fortran-contiguous array ``a.T``, so every lowering
routes operands through :func:`_fortran_view` — fold the physical order
into the routine's ``trans``/``side``/``lower`` flags instead of
materializing transposed or reordered copies.  The only copies the hot
loop pays are the ones the routines themselves require (e.g. ``dtrmm`` /
``dtrsm`` write their result into a private copy of ``B`` because the
operand buffers must never be overwritten — plans replay concurrently
and input arrays belong to the caller).

Lowering table (see also ``BLAS_LOWERED_KERNELS``)
--------------------------------------------------
===========================  =======================================
kernel                       routine
===========================  =======================================
GEMM                         ``dgemm`` (``dsyrk`` + mirror when both
                             operands are the same array, ``A op(A)``)
SYMM, SYSYMM                 ``dsymm``
TRMM, TRTRMM, TRSYMM         ``dtrmm``
DIMM, DIDIMM                 broadcast diagonal scaling
TRSM, TRSYSV, TRTRSV         ``dtrsm``
POGESV, POSYSV, POTRSV       ``dposv``
SYGESV, SYSYSV, SYTRSV       ``dsysv``
GEGESV, GESYSV, GETRSV       ``dgetrf`` + ``dgetrs``
DIGESV/DISYSV/...            reference fallback (already a broadcast)
===========================  =======================================

Configurations the routines cannot express fall back per-kernel to the
reference implementation (labelled ``"reference fallback"``), so plan
compilation is total: the backend never refuses a plan, it only lowers
less of it.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Optional

import numpy as np

from repro.errors import ExecutionError
from repro.kernels import reference as _reference
from repro.runtime.backends.base import (
    FALLBACK_ROUTINE,
    Backend,
    LoweredKernel,
)

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.runtime.executor import KernelCallConfig

try:  # pragma: no cover - exercised implicitly on every import
    from scipy.linalg import blas as _blas
    from scipy.linalg import lapack as _lapack
except Exception:  # pragma: no cover - scipy-less environments
    _blas = None
    _lapack = None

_BLAS_ROUTINES = ("dgemm", "dsymm", "dtrmm", "dtrsm", "dsyrk")
_LAPACK_ROUTINES = ("dgetrf", "dgetrs", "dposv", "dsysv")


def blas_available() -> bool:
    """Whether every routine this backend lowers to is importable."""
    return (
        _blas is not None
        and _lapack is not None
        and all(hasattr(_blas, name) for name in _BLAS_ROUTINES)
        and all(hasattr(_lapack, name) for name in _LAPACK_ROUTINES)
    )


# ---------------------------------------------------------------------------
# Contiguity algebra: present operands Fortran-contiguously with zero copies.
# ---------------------------------------------------------------------------

def _fortran_view(a: np.ndarray, trans: bool):
    """``(array, trans)`` presenting ``op(a)`` without copying.

    ``op(array)`` (transpose iff the returned flag) equals ``op(a)`` for
    the incoming flag, and the returned array is Fortran-contiguous
    whenever ``a`` is contiguous in either order — a C-contiguous array
    is re-presented as its F-contiguous transpose view with the flag
    flipped.  Non-contiguous arrays (rare: sliced views) are copied.
    """
    if a.flags.f_contiguous:
        return a, trans
    if a.flags.c_contiguous:
        return a.T, not trans
    return np.asfortranarray(a), trans


def _fortran_triangular(a: np.ndarray, trans: bool, lower: bool):
    """:func:`_fortran_view` for triangular operands.

    Re-presenting the array as its transpose view flips the *stored*
    triangularity along with the trans flag.
    """
    if a.flags.f_contiguous:
        return a, trans, lower
    if a.flags.c_contiguous:
        return a.T, not trans, not lower
    return np.asfortranarray(a), trans, lower


def _check_info(info: int, what: str) -> None:
    if info < 0:
        raise ExecutionError(
            f"{what} failed: illegal argument {-info} to the LAPACK routine"
        )
    if info > 0:
        raise ExecutionError(f"{what} failed: matrix is singular (info={info})")


# ---------------------------------------------------------------------------
# Product lowerings.
# ---------------------------------------------------------------------------

def _lower_gemm(cfg: "KernelCallConfig"):
    """``op(A) op(B)`` -> ``dgemm`` (``dsyrk`` when A and B alias)."""
    lt, rt = cfg.left_trans, cfg.right_trans
    syrk_shape = lt != rt  # A op(A): symmetric rank-k update territory

    def run(left, right):
        if syrk_shape and left is right:
            # One operand, half the FLOPs: dsyrk fills the upper
            # triangle of op(a) op(a)^T; mirror it to the full dense
            # storage every downstream kernel expects.
            a, t = _fortran_view(left, lt)
            c = _blas.dsyrk(1.0, a, trans=1 if t else 0, lower=0)
            return c + np.triu(c, 1).T
        a, ta = _fortran_view(left, lt)
        b, tb = _fortran_view(right, rt)
        return _blas.dgemm(1.0, a, b, trans_a=1 if ta else 0, trans_b=1 if tb else 0)

    return run, "dgemm"


def _lower_symm(cfg: "KernelCallConfig"):
    """``S G`` / ``G S`` with S symmetric -> ``dsymm``.

    The symmetric operand equals its transpose, so its trans flag and
    physical order are both immaterial; the general operand's transpose
    is expressed by computing the transposed product with the side
    flipped and viewing the result back (``(S G^T)^T = G S``), which
    ``dsymm`` *can* spell — no transposed copy is ever materialized.
    """
    side_left = cfg.side == "left"
    g_trans = cfg.right_trans if side_left else cfg.left_trans

    def run(left, right):
        s, g = (left, right) if side_left else (right, left)
        sa, _ = _fortran_view(s, False)
        gb, gt = _fortran_view(g, g_trans)
        if not gt:
            return _blas.dsymm(1.0, sa, gb, side=0 if side_left else 1, lower=0)
        out = _blas.dsymm(1.0, sa, gb, side=1 if side_left else 0, lower=0)
        return out.T

    return run, "dsymm"


def _lower_trmm(cfg: "KernelCallConfig"):
    """``op(T) G`` / ``G op(T)`` with T triangular -> ``dtrmm``.

    Triangular transposition folds into ``trans_a`` (flipping the stored
    triangularity when the array is re-presented as its transpose view);
    a transposed general operand uses the same side-flip duality as
    :func:`_lower_symm`.
    """
    t_pos = _structured_position(cfg)
    if t_pos is None:
        return None
    side_left = t_pos == "left"
    t_trans = cfg.left_trans if side_left else cfg.right_trans
    t_lower = cfg.left_lower if side_left else cfg.right_lower
    g_trans = cfg.right_trans if side_left else cfg.left_trans

    def run(left, right):
        t, g = (left, right) if side_left else (right, left)
        ta, tt, tl = _fortran_triangular(t, t_trans, t_lower)
        gb, gt = _fortran_view(g, g_trans)
        if not gt:
            return _blas.dtrmm(
                1.0, ta, gb,
                side=0 if side_left else 1,
                lower=1 if tl else 0,
                trans_a=1 if tt else 0,
            )
        out = _blas.dtrmm(
            1.0, ta, gb,
            side=1 if side_left else 0,
            lower=1 if tl else 0,
            trans_a=0 if tt else 1,
        )
        return out.T

    return run, "dtrmm"


def _structured_position(cfg: "KernelCallConfig") -> Optional[str]:
    """Which operand carries the triangular storage flags.

    The kernel convention puts the structured operand on ``cfg.side``;
    trust that when its triangularity is recorded, otherwise fall back to
    whichever operand has a stored triangularity at all.
    """
    side_lower = cfg.left_lower if cfg.side == "left" else cfg.right_lower
    if side_lower is not None:
        return cfg.side
    if cfg.left_lower is not None:
        return "left"
    if cfg.right_lower is not None:
        return "right"
    return None


def _lower_dimm(cfg: "KernelCallConfig"):
    """``D G`` (row scaling) / ``G D`` (column scaling), D diagonal.

    Not a BLAS call at all — a broadcast multiply over the diagonal view,
    replacing the reference backend's full dense matmul (2mn^2 FLOPs) with
    the mn the kernel actually costs.  Bit-compatible with the dense
    emulation for finite inputs: the dense sum adds exact zeros.

    The diagonal operand is located by the config's ``left_diag`` /
    ``right_diag`` flags, not by ``side``: side marks the *structured*
    operand, which points at the wrong one when the non-diagonal operand
    is itself structured (``L * D``, ``S * D``).  Hand-built configs
    without the flags fall back to the side heuristic.
    """
    if cfg.left_diag or cfg.right_diag:
        diag_left = cfg.left_diag
    else:
        diag_left = cfg.side == "left"
    g_trans = cfg.right_trans if diag_left else cfg.left_trans

    def run(left, right):
        d, g = (left, right) if diag_left else (right, left)
        diag = d.diagonal()
        og = g.T if g_trans else g
        if diag_left:
            return diag[:, None] * og
        return og * diag[None, :]

    return run, "diag-scale"


def _lower_didimm(cfg: "KernelCallConfig"):
    """``D1 D2`` with both operands diagonal: elementwise on the diagonals."""

    def run(left, right):
        return np.diag(left.diagonal() * right.diagonal())

    return run, "diag-scale"


# ---------------------------------------------------------------------------
# Solve lowerings.  The coefficient (the operand whose inverse appears in
# the association) stands on ``cfg.side`` of the product.
# ---------------------------------------------------------------------------

def _lower_trsm(cfg: "KernelCallConfig"):
    """Triangular solve -> ``dtrsm``, same flag algebra as ``dtrmm``."""
    side_left = cfg.side == "left"
    c_trans = cfg.left_trans if side_left else cfg.right_trans
    c_lower = cfg.left_lower if side_left else cfg.right_lower
    r_trans = cfg.right_trans if side_left else cfg.left_trans
    if c_lower is None:
        return None

    def run(left, right):
        t, g = (left, right) if side_left else (right, left)
        ta, tt, tl = _fortran_triangular(t, c_trans, c_lower)
        gb, gt = _fortran_view(g, r_trans)
        if not gt:
            return _blas.dtrsm(
                1.0, ta, gb,
                side=0 if side_left else 1,
                lower=1 if tl else 0,
                trans_a=1 if tt else 0,
            )
        # op(T)^-1 G^T = (G op(T)^-T)^T (and symmetrically for the
        # right side): solve the transposed system, view the result back.
        out = _blas.dtrsm(
            1.0, ta, gb,
            side=1 if side_left else 0,
            lower=1 if tl else 0,
            trans_a=0 if tt else 1,
        )
        return out.T

    return run, "dtrsm"


def _lower_posv(cfg: "KernelCallConfig"):
    """SPD solve -> one ``dposv`` (Cholesky-factor-and-solve) call."""
    side_left = cfg.side == "left"
    r_trans = cfg.right_trans if side_left else cfg.left_trans

    def run(left, right):
        a, b = (left, right) if side_left else (right, left)
        rhs = b.T if r_trans else b
        if side_left:
            _, x, info = _lapack.dposv(a, rhs, lower=0)
        else:
            # X A = R  <=>  A X^T = R^T (A is symmetric).
            _, x, info = _lapack.dposv(a, rhs.T, lower=0)
        if info != 0:
            raise ExecutionError(
                f"SPD solve failed: matrix is not positive definite "
                f"(dposv info={info})"
            )
        return x if side_left else x.T

    return run, "dposv"


def _lower_sysv(cfg: "KernelCallConfig"):
    """Symmetric-indefinite solve -> ``dsysv`` (Bunch-Kaufman)."""
    side_left = cfg.side == "left"
    r_trans = cfg.right_trans if side_left else cfg.left_trans

    def run(left, right):
        a, b = (left, right) if side_left else (right, left)
        rhs = b.T if r_trans else b
        if side_left:
            _, _, x, info = _lapack.dsysv(a, rhs, lower=0)
        else:
            _, _, x, info = _lapack.dsysv(a, rhs.T, lower=0)
        _check_info(info, "symmetric solve")
        return x if side_left else x.T

    return run, "dsysv"


def _lower_gesv(cfg: "KernelCallConfig"):
    """General solve -> ``dgetrf`` + ``dgetrs`` (trans folded into getrs)."""
    side_left = cfg.side == "left"
    c_trans = cfg.left_trans if side_left else cfg.right_trans
    r_trans = cfg.right_trans if side_left else cfg.left_trans

    def run(left, right):
        a, b = (left, right) if side_left else (right, left)
        aa, at = _fortran_view(a, c_trans)
        lu, piv, info = _lapack.dgetrf(aa)
        _check_info(info, "general solve")
        if side_left:
            # op(A) X = R with R = op_r(b).
            rhs = b.T if r_trans else b
            x, info = _lapack.dgetrs(lu, piv, rhs, trans=1 if at else 0)
            _check_info(info, "general solve")
            return x
        # X op(A) = R  <=>  op(A)^T X^T = R^T.
        rhs_t = b if r_trans else b.T
        x, info = _lapack.dgetrs(lu, piv, rhs_t, trans=0 if at else 1)
        _check_info(info, "general solve")
        return x.T

    return run, "dgetrf+dgetrs"


# ---------------------------------------------------------------------------
# The backend.
# ---------------------------------------------------------------------------

_LOWERINGS = {
    "GEMM": _lower_gemm,
    "SYMM": _lower_symm,
    "SYSYMM": _lower_symm,
    "TRMM": _lower_trmm,
    "TRTRMM": _lower_trmm,
    "TRSYMM": _lower_trmm,
    "DIMM": _lower_dimm,
    "DIDIMM": _lower_didimm,
    "TRSM": _lower_trsm,
    "TRSYSV": _lower_trsm,
    "TRTRSV": _lower_trsm,
    "POGESV": _lower_posv,
    "POSYSV": _lower_posv,
    "POTRSV": _lower_posv,
    "SYGESV": _lower_sysv,
    "SYSYSV": _lower_sysv,
    "SYTRSV": _lower_sysv,
    "GEGESV": _lower_gesv,
    "GESYSV": _lower_gesv,
    "GETRSV": _lower_gesv,
}

#: kernel name -> routine label the backend lowers it to (README Table).
#: Kernels absent here (the diagonal solves, which the reference backend
#: already executes as broadcasts) always take the reference fallback.
BLAS_LOWERED_KERNELS = {
    "GEMM": "dgemm",
    "SYMM": "dsymm",
    "SYSYMM": "dsymm",
    "TRMM": "dtrmm",
    "TRTRMM": "dtrmm",
    "TRSYMM": "dtrmm",
    "DIMM": "diag-scale",
    "DIDIMM": "diag-scale",
    "TRSM": "dtrsm",
    "TRSYSV": "dtrsm",
    "TRTRSV": "dtrsm",
    "POGESV": "dposv",
    "POSYSV": "dposv",
    "POTRSV": "dposv",
    "SYGESV": "dsysv",
    "SYSYSV": "dsysv",
    "SYTRSV": "dsysv",
    "GEGESV": "dgetrf+dgetrs",
    "GESYSV": "dgetrf+dgetrs",
    "GETRSV": "dgetrf+dgetrs",
}


class BlasBackend(Backend):
    """Lower frozen kernel calls to direct BLAS/LAPACK routines.

    Total over the kernel set: anything the routines cannot express —
    unknown kernels, missing scipy routines, configurations without the
    flags they need — lowers to the reference implementation labelled
    :data:`~repro.runtime.backends.base.FALLBACK_ROUTINE`.
    """

    name = "blas"

    def specialize(
        self, kernel_name: str, cfg: "KernelCallConfig"
    ) -> LoweredKernel:
        if blas_available():
            lowering = _LOWERINGS.get(kernel_name)
            if lowering is not None:
                lowered = lowering(cfg)
                if lowered is not None:
                    impl, routine = lowered
                    return LoweredKernel(impl, routine)
        return LoweredKernel(
            _reference.specialize_kernel(kernel_name, cfg), FALLBACK_ROUTINE
        )

"""Pluggable execution backends for compiled execution plans.

``reference``
    Today's numpy/scipy kernel substrate — structured products executed
    as dense matmuls, solves through the family solvers.  Bit-identical
    to the pre-backend runtime.
``blas``
    Direct ``scipy.linalg.blas`` / ``scipy.linalg.lapack`` calls with the
    transpose/side/triangularity algebra pre-resolved into routine flags;
    per-kernel reference fallback for configurations BLAS cannot express.
``c``
    Code-generates each frozen plan as one native C step loop (BLAS and
    LAPACK reached through capsule-harvested function pointers), compiled
    lazily and cached on disk; falls back to ``blas`` per plan when no
    toolchain is present or a step is outside the emitter's table.
``auto``
    Not a plan-level backend but a dispatcher strategy: compile a plan
    per concrete backend, micro-benchmark each once per ``(variant,
    sizes)`` memo entry, serve the measured winner.
"""

from __future__ import annotations

from typing import Union

from repro.errors import ExecutionError
from repro.runtime.backends.base import FALLBACK_ROUTINE, Backend, LoweredKernel
from repro.runtime.backends.blas import (
    BLAS_LOWERED_KERNELS,
    BlasBackend,
    blas_available,
)
from repro.runtime.backends.cemit import CEmitBackend, cemit_available
from repro.runtime.backends.reference import REFERENCE_ROUTINE, ReferenceBackend

#: Names accepted wherever a backend strategy is selected (CompileOptions,
#: Dispatcher, ``repro run --backend``).
BACKEND_NAMES = ("reference", "blas", "c", "auto")

#: Names that denote a concrete plan-level backend; ``auto`` resolves to
#: one of these per memo entry.
PLAN_BACKEND_NAMES = ("reference", "blas", "c")

_BACKENDS = {
    "reference": ReferenceBackend(),
    "blas": BlasBackend(),
    "c": CEmitBackend(),
}


def get_backend(backend: Union[str, Backend]) -> Backend:
    """Resolve a concrete plan-level backend from a name or instance.

    ``auto`` is deliberately rejected here: it is a dispatcher strategy,
    not something a single plan can be compiled against.
    """
    if isinstance(backend, Backend):
        return backend
    try:
        return _BACKENDS[backend]
    except (KeyError, TypeError):
        raise ExecutionError(
            f"unknown execution backend {backend!r}; plan-level backends are "
            f"{PLAN_BACKEND_NAMES} (the dispatcher additionally accepts 'auto')"
        ) from None


__all__ = [
    "BACKEND_NAMES",
    "BLAS_LOWERED_KERNELS",
    "Backend",
    "BlasBackend",
    "CEmitBackend",
    "FALLBACK_ROUTINE",
    "LoweredKernel",
    "PLAN_BACKEND_NAMES",
    "REFERENCE_ROUTINE",
    "ReferenceBackend",
    "blas_available",
    "cemit_available",
    "get_backend",
]

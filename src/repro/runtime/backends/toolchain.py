"""C toolchain discovery for the code-generating execution backend.

The ``c`` backend (:mod:`repro.runtime.backends.cemit`) compiles emitted
plan modules lazily with whatever C compiler the host provides.  This
module owns the discovery seam so it can be patched in tests and masked
in CI:

* ``$REPRO_CC`` names the compiler explicitly (absolute path or a name
  resolved on ``$PATH``);
* otherwise the first of ``cc``/``gcc``/``clang`` found on ``$PATH``
  wins;
* ``$REPRO_DISABLE_CC`` (any non-empty value) masks discovery entirely —
  the no-compiler degradation path, exercised once per CI run;
* a toolchain is only reported when the CPython ``Python.h`` header is
  present (emitted modules are CPython extensions).

Discovery is cached per process (compilers do not appear mid-run);
:func:`reset_toolchain_cache` drops the cache for tests that flip the
environment.
"""

from __future__ import annotations

import os
import shutil
import subprocess
import sysconfig
import threading
from dataclasses import dataclass
from typing import Optional

__all__ = [
    "Toolchain",
    "ToolchainError",
    "discover_toolchain",
    "reset_toolchain_cache",
]

#: Compiler names probed on $PATH, in preference order.
_COMPILER_CANDIDATES = ("cc", "gcc", "clang")


class ToolchainError(RuntimeError):
    """A discovered compiler failed to build an emitted module."""


@dataclass(frozen=True)
class Toolchain:
    """One usable host C compiler plus the CPython include directory."""

    compiler: str
    include_dir: str

    def compile_shared(self, source_path: str, output_path: str) -> None:
        """Compile one emitted C file into a shared object.

        ``-O2 -fPIC -shared`` is the whole story: the emitted code is a
        thin step loop around function-pointer calls, so there is nothing
        for heroic optimization levels to find, and keeping the command
        minimal keeps it portable across cc/gcc/clang.
        """
        cmd = [
            self.compiler,
            "-O2",
            "-fPIC",
            "-shared",
            "-o",
            output_path,
            source_path,
            f"-I{self.include_dir}",
        ]
        try:
            proc = subprocess.run(
                cmd,
                stdout=subprocess.PIPE,
                stderr=subprocess.PIPE,
                timeout=120,
            )
        except (OSError, subprocess.SubprocessError) as exc:
            raise ToolchainError(f"{self.compiler} failed to run: {exc}") from exc
        if proc.returncode != 0:
            stderr = proc.stderr.decode(errors="replace").strip()
            raise ToolchainError(
                f"{self.compiler} exited {proc.returncode}: {stderr[:500]}"
            )


_lock = threading.Lock()
_cached: Optional[tuple[Optional[Toolchain]]] = None


def _probe() -> Optional[Toolchain]:
    if os.environ.get("REPRO_DISABLE_CC"):
        return None
    include_dir = sysconfig.get_paths().get("include")
    if not include_dir or not os.path.isfile(
        os.path.join(include_dir, "Python.h")
    ):
        return None
    override = os.environ.get("REPRO_CC")
    if override:
        resolved = (
            override
            if os.path.isabs(override) and os.access(override, os.X_OK)
            else shutil.which(override)
        )
        return Toolchain(resolved, include_dir) if resolved else None
    for name in _COMPILER_CANDIDATES:
        resolved = shutil.which(name)
        if resolved:
            return Toolchain(resolved, include_dir)
    return None


def discover_toolchain() -> Optional[Toolchain]:
    """The host toolchain, or ``None`` when compilation is impossible.

    ``None`` is a *supported* answer, not an error: the ``c`` backend
    falls back to ``blas`` (and says so in the
    ``runtime.codegen_fallbacks`` counter) whenever this returns it.
    """
    global _cached
    with _lock:
        if _cached is None:
            _cached = (_probe(),)
        return _cached[0]


def reset_toolchain_cache() -> None:
    """Forget the cached discovery (tests that patch the environment)."""
    global _cached
    with _lock:
        _cached = None

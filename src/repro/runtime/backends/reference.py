"""The reference execution backend: today's numpy/scipy kernel substrate.

A thin adapter over :func:`repro.kernels.reference.specialize_kernel` —
the exact per-step callables execution plans used before backends became
a strategy, so ``backend="reference"`` is bit-identical to the historical
behaviour (structured products executed as full dense matmuls, solves
through the family solver of :data:`~repro.kernels.reference.SOLVER_BY_KERNEL`).
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.kernels import reference
from repro.runtime.backends.base import Backend, LoweredKernel

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.runtime.executor import KernelCallConfig

#: Routine label of every reference-lowered kernel.
REFERENCE_ROUTINE = "reference"


class ReferenceBackend(Backend):
    """Lower every kernel to its specialized reference implementation."""

    name = "reference"

    def specialize(
        self, kernel_name: str, cfg: "KernelCallConfig"
    ) -> LoweredKernel:
        return LoweredKernel(
            reference.specialize_kernel(kernel_name, cfg), REFERENCE_ROUTINE
        )

    def specialize_out(self, kernel_name: str, cfg: "KernelCallConfig"):
        # Product kernels write into the arena slot through the same BLAS
        # matmul (np.matmul out=); solves keep their allocating solvers.
        return reference.specialize_kernel_out(kernel_name, cfg)

"""Exception hierarchy for the GMC compiler.

All library-specific errors derive from :class:`ReproError` so that callers
can catch one base class.  The subclasses mirror the pipeline stages: parsing
the input program, validating matrix features, building variants, and
executing generated code.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by this library."""


class ParseError(ReproError):
    """The input program does not conform to the grammar of Fig. 2."""

    def __init__(self, message: str, line: int | None = None, column: int | None = None):
        self.line = line
        self.column = column
        location = ""
        if line is not None:
            location = f" (line {line}" + (f", column {column})" if column is not None else ")")
        super().__init__(message + location)


class InvalidFeaturesError(ReproError):
    """A matrix combines structure, property, and operators illegally.

    Examples: a *General* structure with the *SPD* property (SPD implies the
    symmetric structure), or inversion applied to a *Singular* matrix.
    """


class ShapeError(ReproError):
    """A chain is malformed (e.g. mismatching symbolic dimensions)."""


class CompilationError(ReproError):
    """Variant construction failed (no kernel covers an association)."""


class ExecutionError(ReproError):
    """Runtime evaluation of a variant on concrete matrices failed."""


class DispatchError(ReproError):
    """The runtime dispatcher was called with an invalid instance."""


class ServiceError(ReproError):
    """Base class for compilation-service (``repro.serve``) failures."""


class ServiceOverloadedError(ServiceError):
    """The service's bounded request queue is full (back-pressure signal)."""


class ServiceClosedError(ServiceError):
    """A request was submitted to a service that has been shut down."""

"""Matrix features: structures and properties (paper Section III-A).

A matrix's features are the combination of a :class:`Structure` (how entries
are arranged in memory) and a :class:`Property` (whether the matrix is
invertible and which kernels may solve linear systems with it).
"""

from __future__ import annotations

import enum

from repro.errors import InvalidFeaturesError


class Structure(enum.Enum):
    """Storage structure of a matrix.

    All structures except :attr:`GENERAL` imply that the matrix is square.
    ``DIAGONAL`` is an extension beyond the paper's four structures (its
    grammar lists ``General | Symmetric | LowerTri | ...``): diagonal
    operands admit O(mn) scaling kernels instead of O(m^2 n) triangular
    ones, which exercises the compiler's extensibility.
    """

    GENERAL = "General"
    SYMMETRIC = "Symmetric"
    LOWER_TRIANGULAR = "LowerTri"
    UPPER_TRIANGULAR = "UpperTri"
    DIAGONAL = "Diagonal"

    @property
    def implies_square(self) -> bool:
        """Whether any matrix with this structure must be square."""
        return self is not Structure.GENERAL

    @property
    def is_triangular(self) -> bool:
        return self in (Structure.LOWER_TRIANGULAR, Structure.UPPER_TRIANGULAR)

    @property
    def transposed(self) -> "Structure":
        """Structure of the transpose (triangularity flips, Section IV)."""
        if self is Structure.LOWER_TRIANGULAR:
            return Structure.UPPER_TRIANGULAR
        if self is Structure.UPPER_TRIANGULAR:
            return Structure.LOWER_TRIANGULAR
        return self

    def __str__(self) -> str:  # pragma: no cover - trivial
        return self.value


class Property(enum.Enum):
    """Invertibility property of a matrix.

    ``SINGULAR`` means *no invertibility guarantee* (the matrix may or may
    not be invertible; the compiler must not solve systems with it).
    """

    SINGULAR = "Singular"
    NON_SINGULAR = "NonSingular"
    SPD = "SPD"
    ORTHOGONAL = "Orthogonal"

    @property
    def is_invertible(self) -> bool:
        """Whether the property guarantees invertibility."""
        return self is not Property.SINGULAR

    @property
    def implies_square(self) -> bool:
        """Only general singular matrices may be rectangular."""
        return self is not Property.SINGULAR

    def __str__(self) -> str:  # pragma: no cover - trivial
        return self.value


def validate_features(structure: Structure, prop: Property) -> None:
    """Raise :class:`InvalidFeaturesError` on illegal feature combinations.

    The rules come from Section III-A of the paper:

    * SPD implies the symmetric structure, so it cannot be combined with any
      other structure.
    * A triangular orthogonal matrix is the identity; such matrices must be
      removed by the rewrites before compilation, so constructing one
      directly is allowed but flagged by :func:`is_identity`.
    """
    if prop is Property.SPD and structure is not Structure.SYMMETRIC:
        raise InvalidFeaturesError(
            f"the SPD property implies the Symmetric structure, "
            f"but structure {structure.value!r} was given"
        )


def is_identity(structure: Structure, prop: Property) -> bool:
    """Whether the features imply the matrix is the identity.

    Any triangular structure combined with the orthogonal property implies
    the identity matrix (the only triangular orthogonal real matrix with
    positive diagonal; the paper treats the combination as the identity and
    removes the matrix from the expression).  A *diagonal* orthogonal
    matrix is only a signature matrix (diagonal of +/-1), so it is kept.
    """
    return structure.is_triangular and prop is Property.ORTHOGONAL


def features_imply_square(structure: Structure, prop: Property) -> bool:
    """Whether a matrix with these features must be square."""
    return structure.implies_square or prop.implies_square

"""Feature-driven simplification rewrites (paper Section III-A).

Before compilation, the chain is normalized:

* Transposition is removed when applied to a matrix with the symmetric
  structure (``S^T = S``, ``S^-T = S^-1``).
* Inversion is replaced by transposition when applied to an orthogonal
  matrix (``Q^-1 = Q^T``, ``Q^-T = Q``).
* A matrix whose features imply the identity (triangular structure combined
  with the orthogonal property) is removed from the chain entirely.

These rules are confluent and applied in a single pass: the per-operand
operator rewrites never create or destroy identity matrices, and identity
removal does not change any other operand.
"""

from __future__ import annotations

from repro.errors import ShapeError
from repro.ir.chain import Chain
from repro.ir.features import Structure, is_identity
from repro.ir.operand import Operand, UnaryOp


def simplify_operand(operand: Operand) -> Operand:
    """Apply the per-operand operator rewrites of Section III-A."""
    matrix = operand.matrix
    inverted, transposed = operand.op.inverted, operand.op.transposed
    # Q^-1 = Q^T and Q^-T = Q for orthogonal Q: trade the inversion for a
    # transposition (XOR with the existing transposition flag).
    if inverted and matrix.prop.name == "ORTHOGONAL":
        inverted = False
        transposed = not transposed
    # S^T = S and D^T = D: transposition is a no-op on symmetric and
    # diagonal structures.
    if transposed and matrix.structure in (Structure.SYMMETRIC, Structure.DIAGONAL):
        transposed = False
    return Operand(matrix, UnaryOp.from_flags(inverted, transposed))


def simplify_chain(chain: Chain) -> Chain:
    """Normalize a chain; raises :class:`ShapeError` if it becomes empty.

    A chain in which every matrix is an identity simplifies to the identity
    matrix, which is not a valid compilation target (there is nothing to
    compute); the caller should special-case it.
    """
    kept = []
    for operand in chain:
        if is_identity(operand.matrix.structure, operand.matrix.prop):
            continue
        kept.append(simplify_operand(operand))
    if not kept:
        raise ShapeError(
            "chain simplifies to the identity matrix; nothing to compile"
        )
    return Chain(tuple(kept))

"""Symbolic matrices: a name plus features (structure and property)."""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import InvalidFeaturesError
from repro.ir.features import Property, Structure, features_imply_square, validate_features


@dataclass(frozen=True)
class Matrix:
    """A named symbolic matrix with features.

    Sizes are *not* part of the matrix: they are symbolic and attached to the
    chain (Section III).  Use the ``.T`` / ``.inv`` / ``.invT`` accessors to
    build operands, and ``*`` to build chains::

        G = Matrix("G", Structure.GENERAL)
        L = Matrix("L", Structure.LOWER_TRIANGULAR, Property.NON_SINGULAR)
        chain = G * L.inv * G.T
    """

    name: str
    structure: Structure = Structure.GENERAL
    prop: Property = field(default=Property.SINGULAR)

    def __post_init__(self) -> None:
        if not self.name or not self.name[0].isalpha():
            raise InvalidFeaturesError(
                f"matrix name must start with a letter, got {self.name!r}"
            )
        validate_features(self.structure, self.prop)

    @property
    def is_square(self) -> bool:
        """Whether the features force this matrix to be square."""
        return features_imply_square(self.structure, self.prop)

    @property
    def is_invertible(self) -> bool:
        return self.prop.is_invertible

    # -- operand construction ------------------------------------------------

    @property
    def T(self) -> "Operand":
        """The transposed operand ``M^T``."""
        from repro.ir.operand import Operand, UnaryOp

        return Operand(self, UnaryOp.TRANSPOSE)

    @property
    def inv(self) -> "Operand":
        """The inverted operand ``M^-1``."""
        from repro.ir.operand import Operand, UnaryOp

        return Operand(self, UnaryOp.INVERSE)

    @property
    def invT(self) -> "Operand":
        """The inverse-transposed operand ``M^-T``."""
        from repro.ir.operand import Operand, UnaryOp

        return Operand(self, UnaryOp.INVERSE_TRANSPOSE)

    def as_operand(self) -> "Operand":
        """This matrix as an operand with no unary operator."""
        from repro.ir.operand import Operand, UnaryOp

        return Operand(self, UnaryOp.NONE)

    def __mul__(self, other):
        return self.as_operand() * other

    def __rmul__(self, other):
        return other * self.as_operand()

    def describe(self) -> str:
        """Human-readable feature summary, e.g. ``L<LowerTri, NonSingular>``."""
        return f"{self.name}<{self.structure.value}, {self.prop.value}>"

    def __str__(self) -> str:
        return self.name

"""Parser for the code generator's input language (paper Fig. 2).

The grammar::

    program     -> definitions expression
    definitions -> definition+
    definition  -> "Matrix" ident "<" structure "," property ">" ";"
    structure   -> "General" | "Symmetric" | "LowerTri" | "UpperTri" | ...
    property    -> "Singular" | "NonSingular" | "SPD" | "Orthogonal"
    expression  -> ident ":=" term (("+" | "-") term)* ";"
    term        -> [number "*"] operand ("*" operand)*
    operand     -> ident | ident "^T" | ident "^-1" | ident "^-T"
    ident       -> letter (letter | digit | "_")*

The paper's Fig. 2 covers single-chain expressions; the sum-of-terms form
(with optional scalar literals) is this reproduction's future-work
extension, see :mod:`repro.ir.expression`.

A few ergonomic extensions are accepted: ``Invertible`` as an alias for
``NonSingular``, ``LowerTriangular``/``UpperTriangular`` as long-form
structures, ``Diagonal``, and the functional spellings ``inv(A)``,
``trans(A)``, and ``invtrans(A)`` for the unary operators.
"""

from __future__ import annotations

import re
from dataclasses import dataclass

from repro.errors import ParseError
from repro.ir.chain import Chain
from repro.ir.expression import ChainSum, ChainTerm
from repro.ir.features import Property, Structure
from repro.ir.matrix import Matrix
from repro.ir.operand import Operand, UnaryOp

_STRUCTURES = {
    "general": Structure.GENERAL,
    "symmetric": Structure.SYMMETRIC,
    "lowertri": Structure.LOWER_TRIANGULAR,
    "lowertriangular": Structure.LOWER_TRIANGULAR,
    "uppertri": Structure.UPPER_TRIANGULAR,
    "uppertriangular": Structure.UPPER_TRIANGULAR,
    "diagonal": Structure.DIAGONAL,
}

_PROPERTIES = {
    "singular": Property.SINGULAR,
    "nonsingular": Property.NON_SINGULAR,
    "invertible": Property.NON_SINGULAR,
    "spd": Property.SPD,
    "orthogonal": Property.ORTHOGONAL,
}

_TOKEN_RE = re.compile(
    r"""
    (?P<WS>\s+)
  | (?P<COMMENT>\#[^\n]*)
  | (?P<ASSIGN>:=)
  | (?P<INVT>\^-T)
  | (?P<INV>\^-1)
  | (?P<TRANS>\^T)
  | (?P<IDENT>[A-Za-z][A-Za-z0-9_]*)
  | (?P<NUMBER>\d+(\.\d+)?)
  | (?P<PUNCT>[<>,;*()+\-])
    """,
    re.VERBOSE,
)


@dataclass(frozen=True)
class Token:
    kind: str
    text: str
    line: int
    column: int


def _tokenize(source: str) -> list[Token]:
    tokens: list[Token] = []
    line, line_start = 1, 0
    pos = 0
    while pos < len(source):
        match = _TOKEN_RE.match(source, pos)
        if match is None:
            raise ParseError(
                f"unexpected character {source[pos]!r}",
                line=line,
                column=pos - line_start + 1,
            )
        kind = match.lastgroup or ""
        text = match.group()
        if kind not in ("WS", "COMMENT"):
            tokens.append(Token(kind, text, line, pos - line_start + 1))
        newlines = text.count("\n")
        if newlines:
            line += newlines
            line_start = pos + text.rfind("\n") + 1
        pos = match.end()
    return tokens


@dataclass(frozen=True)
class Program:
    """A parsed program: matrix definitions plus one expression.

    For the paper's single-chain programs, :attr:`chain` gives the chain
    directly; sum-of-terms programs must be accessed through
    :attr:`expression`.
    """

    matrices: dict[str, Matrix]
    result_name: str
    expression: ChainSum

    @property
    def chain(self) -> Chain:
        """The expression's unique chain; raises for sums of terms."""
        if len(self.expression) != 1:
            raise ParseError(
                "program is a sum of chains; use Program.expression "
                "(or compile_expression) instead of Program.chain"
            )
        term = self.expression.terms[0]
        if term.coefficient != 1.0:
            raise ParseError(
                "program scales its chain by a scalar; use "
                "Program.expression instead of Program.chain"
            )
        return term.chain


class _Parser:
    def __init__(self, tokens: list[Token]):
        self._tokens = tokens
        self._pos = 0

    def _peek(self) -> Token | None:
        if self._pos < len(self._tokens):
            return self._tokens[self._pos]
        return None

    def _next(self, expected: str | None = None) -> Token:
        token = self._peek()
        if token is None:
            raise ParseError(
                f"unexpected end of input"
                + (f" (expected {expected})" if expected else "")
            )
        self._pos += 1
        return token

    def _expect_text(self, text: str) -> Token:
        token = self._next(expected=repr(text))
        if token.text != text:
            raise ParseError(
                f"expected {text!r}, got {token.text!r}",
                line=token.line,
                column=token.column,
            )
        return token

    def _expect_ident(self, description: str = "identifier") -> Token:
        token = self._next(expected=description)
        if token.kind != "IDENT":
            raise ParseError(
                f"expected {description}, got {token.text!r}",
                line=token.line,
                column=token.column,
            )
        return token

    # -- grammar productions -------------------------------------------------

    def parse_program(self) -> Program:
        matrices: dict[str, Matrix] = {}
        while True:
            token = self._peek()
            if token is None:
                raise ParseError("expected an expression after the matrix definitions")
            if token.kind == "IDENT" and token.text == "Matrix":
                name, matrix = self._parse_definition()
                if name in matrices:
                    raise ParseError(
                        f"matrix {name!r} defined twice",
                        line=token.line,
                        column=token.column,
                    )
                matrices[name] = matrix
            else:
                break
        if not matrices:
            token = self._peek()
            raise ParseError(
                "a program must start with at least one 'Matrix' definition",
                line=token.line if token else None,
            )
        result_name, expression = self._parse_expression(matrices)
        trailing = self._peek()
        if trailing is not None:
            raise ParseError(
                f"unexpected trailing input {trailing.text!r}",
                line=trailing.line,
                column=trailing.column,
            )
        return Program(
            matrices=matrices, result_name=result_name, expression=expression
        )

    def _parse_definition(self) -> tuple[str, Matrix]:
        self._expect_text("Matrix")
        name_token = self._expect_ident("matrix name")
        self._expect_text("<")
        structure_token = self._expect_ident("structure")
        structure = _STRUCTURES.get(structure_token.text.lower())
        if structure is None:
            raise ParseError(
                f"unknown structure {structure_token.text!r} "
                f"(expected one of {sorted(set(s.value for s in Structure))})",
                line=structure_token.line,
                column=structure_token.column,
            )
        self._expect_text(",")
        prop_token = self._expect_ident("property")
        prop = _PROPERTIES.get(prop_token.text.lower())
        if prop is None:
            raise ParseError(
                f"unknown property {prop_token.text!r} "
                f"(expected one of {sorted(set(p.value for p in Property))})",
                line=prop_token.line,
                column=prop_token.column,
            )
        self._expect_text(">")
        self._expect_text(";")
        return name_token.text, Matrix(name_token.text, structure, prop)

    def _parse_expression(
        self, matrices: dict[str, Matrix]
    ) -> tuple[str, ChainSum]:
        result_token = self._expect_ident("result name")
        self._expect_text(":=")
        terms = [self._parse_term(matrices, sign=1.0)]
        while True:
            token = self._peek()
            if token is not None and token.text in ("+", "-"):
                self._next()
                sign = 1.0 if token.text == "+" else -1.0
                terms.append(self._parse_term(matrices, sign=sign))
            else:
                break
        self._expect_text(";")
        return result_token.text, ChainSum(tuple(terms))

    def _parse_term(self, matrices: dict[str, Matrix], sign: float) -> ChainTerm:
        coefficient = sign
        token = self._peek()
        if token is not None and token.kind == "NUMBER":
            self._next()
            coefficient *= float(token.text)
            self._expect_text("*")
        operands = [self._parse_operand(matrices)]
        while True:
            token = self._peek()
            if token is not None and token.text == "*":
                self._next()
                operands.append(self._parse_operand(matrices))
            else:
                break
        return ChainTerm(coefficient=coefficient, chain=Chain(tuple(operands)))

    def _parse_operand(self, matrices: dict[str, Matrix]) -> Operand:
        token = self._expect_ident("operand")
        lowered = token.text.lower()
        if lowered in ("inv", "trans", "invtrans") and self._peek_text() == "(":
            self._expect_text("(")
            inner = self._parse_operand(matrices)
            self._expect_text(")")
            op = {
                "inv": UnaryOp.INVERSE,
                "trans": UnaryOp.TRANSPOSE,
                "invtrans": UnaryOp.INVERSE_TRANSPOSE,
            }[lowered]
            combined = UnaryOp.from_flags(
                inner.op.inverted != op.inverted,
                inner.op.transposed != op.transposed,
            )
            return Operand(inner.matrix, combined)
        matrix = matrices.get(token.text)
        if matrix is None:
            raise ParseError(
                f"matrix {token.text!r} used in the expression but never defined",
                line=token.line,
                column=token.column,
            )
        op = UnaryOp.NONE
        suffix = self._peek()
        if suffix is not None and suffix.kind in ("TRANS", "INV", "INVT"):
            self._next()
            op = {
                "TRANS": UnaryOp.TRANSPOSE,
                "INV": UnaryOp.INVERSE,
                "INVT": UnaryOp.INVERSE_TRANSPOSE,
            }[suffix.kind]
        return Operand(matrix, op)

    def _peek_text(self) -> str | None:
        token = self._peek()
        return token.text if token is not None else None


def parse_program(source: str) -> Program:
    """Parse a full program (definitions + one expression)."""
    return _Parser(_tokenize(source)).parse_program()


def parse_chain(source: str) -> Chain:
    """Parse a single-chain program and return its chain."""
    return parse_program(source).chain


def parse_expression(source: str) -> ChainSum:
    """Parse a program and return its (possibly multi-term) expression."""
    return parse_program(source).expression

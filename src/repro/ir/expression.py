"""Sums of generalized matrix chains (a step beyond the paper).

The paper's conclusion names "more general expressions involving addition
and subtraction" as the open next step.  This module takes the first,
well-defined slice of that space: expressions of the form

    R := c1 * chain_1  +/-  c2 * chain_2  +/-  ...

where each term is a generalized matrix chain scaled by an optional scalar
literal, and all terms share one matrix symbol table (the same matrix may
appear in several terms and must be bound to the same array at run time).
Each term is compiled independently with the full multi-versioning
machinery; the additions are a fixed post-pass (they admit no reordering
freedom without common-subexpression reasoning, which the paper explicitly
leaves out as NP-complete).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, Mapping, Sequence

import numpy as np

from repro.errors import ShapeError
from repro.ir.chain import Chain
from repro.ir.matrix import Matrix


@dataclass(frozen=True)
class ChainTerm:
    """One addend: a scalar coefficient times a chain."""

    coefficient: float
    chain: Chain

    def __str__(self) -> str:
        sign = "-" if self.coefficient < 0 else "+"
        magnitude = abs(self.coefficient)
        scalar = "" if magnitude == 1.0 else f"{magnitude:g} * "
        return f"{sign} {scalar}{self.chain}"


@dataclass(frozen=True)
class ChainSum:
    """A sum of scaled chains sharing one matrix symbol table."""

    terms: tuple[ChainTerm, ...]

    def __post_init__(self) -> None:
        if not self.terms:
            raise ShapeError("an expression needs at least one term")
        # Matrices are identified by name; the same name must carry the
        # same features everywhere.
        features: dict[str, Matrix] = {}
        for term in self.terms:
            for operand in term.chain:
                matrix = operand.matrix
                known = features.get(matrix.name)
                if known is None:
                    features[matrix.name] = matrix
                elif known != matrix:
                    raise ShapeError(
                        f"matrix {matrix.name!r} is used with conflicting "
                        f"features across terms"
                    )

    @property
    def matrices(self) -> dict[str, Matrix]:
        """All distinct matrices, keyed by name, in first-use order."""
        table: dict[str, Matrix] = {}
        for term in self.terms:
            for operand in term.chain:
                table.setdefault(operand.matrix.name, operand.matrix)
        return table

    def __iter__(self) -> Iterator[ChainTerm]:
        return iter(self.terms)

    def __len__(self) -> int:
        return len(self.terms)

    def __str__(self) -> str:
        rendered = " ".join(str(term) for term in self.terms)
        return rendered[2:] if rendered.startswith("+ ") else rendered

    # -- run-time size handling ---------------------------------------------

    def term_sizes(
        self, arrays: Mapping[str, np.ndarray]
    ) -> list[tuple[int, ...]]:
        """Per-term instance vectors recovered from named arrays.

        Validates that every matrix is provided, shapes are consistent with
        features and chain adjacency, and all terms produce results of the
        same dimensions.
        """
        from repro.compiler.executor import infer_sizes

        missing = [name for name in self.matrices if name not in arrays]
        if missing:
            raise ShapeError(f"missing arrays for matrices: {', '.join(missing)}")
        sizes = []
        result_dims: tuple[int, int] | None = None
        for term in self.terms:
            term_arrays = [
                np.asarray(arrays[op.matrix.name]) for op in term.chain
            ]
            q = infer_sizes(term.chain, term_arrays)
            dims = (q[0], q[-1])
            if result_dims is None:
                result_dims = dims
            elif dims != result_dims:
                raise ShapeError(
                    f"term {term.chain} produces a {dims[0]}x{dims[1]} "
                    f"result but an earlier term produced "
                    f"{result_dims[0]}x{result_dims[1]}"
                )
            sizes.append(q)
        return sizes

    def addition_flops(self, result_rows: int, result_cols: int) -> float:
        """FLOPs of accumulating the terms (one add per element per '+')."""
        extra_ops = len(self.terms) - 1
        scalar_scales = sum(
            1 for term in self.terms if abs(term.coefficient) != 1.0
        )
        return float(result_rows * result_cols * (extra_ops + scalar_scales))

"""Operands: a matrix under an optional unary operator (Section III)."""

from __future__ import annotations

import enum
from dataclasses import dataclass

from repro.errors import InvalidFeaturesError
from repro.ir.features import Structure
from repro.ir.matrix import Matrix


class UnaryOp(enum.Enum):
    """Unary operators acting on a chain operand: ``op(M)`` in the paper."""

    NONE = ""
    TRANSPOSE = "^T"
    INVERSE = "^-1"
    INVERSE_TRANSPOSE = "^-T"

    @property
    def inverted(self) -> bool:
        return self in (UnaryOp.INVERSE, UnaryOp.INVERSE_TRANSPOSE)

    @property
    def transposed(self) -> bool:
        return self in (UnaryOp.TRANSPOSE, UnaryOp.INVERSE_TRANSPOSE)

    @staticmethod
    def from_flags(inverted: bool, transposed: bool) -> "UnaryOp":
        """Build the operator from its two component flags."""
        if inverted and transposed:
            return UnaryOp.INVERSE_TRANSPOSE
        if inverted:
            return UnaryOp.INVERSE
        if transposed:
            return UnaryOp.TRANSPOSE
        return UnaryOp.NONE


@dataclass(frozen=True)
class Operand:
    """``op(M)``: a matrix with an optional transpose and/or inverse."""

    matrix: Matrix
    op: UnaryOp = UnaryOp.NONE

    def __post_init__(self) -> None:
        if self.op.inverted and not self.matrix.is_invertible:
            raise InvalidFeaturesError(
                f"cannot invert matrix {self.matrix.name!r}: "
                f"property {self.matrix.prop.value!r} does not guarantee invertibility"
            )

    @property
    def inverted(self) -> bool:
        return self.op.inverted

    @property
    def transposed(self) -> bool:
        return self.op.transposed

    @property
    def structure(self) -> Structure:
        """Effective structure, accounting for transposition.

        The structure of a transposed triangular operand is the opposite
        triangular structure (Section IV, step 4).  Inversion preserves
        triangularity and symmetry.
        """
        structure = self.matrix.structure
        if self.transposed:
            structure = structure.transposed
        return structure

    @property
    def is_square(self) -> bool:
        """Whether this operand is necessarily square.

        Inversion forces squareness even when the features alone do not.
        """
        return self.matrix.is_square or self.inverted

    def __mul__(self, other):
        from repro.ir.chain import Chain

        if isinstance(other, Matrix):
            other = other.as_operand()
        if isinstance(other, Operand):
            return Chain((self, other))
        if isinstance(other, Chain):
            return Chain((self, *other.operands))
        return NotImplemented

    def __rmul__(self, other):
        from repro.ir.chain import Chain

        if isinstance(other, Matrix):
            return other.as_operand() * self
        if isinstance(other, Chain):
            return Chain((*other.operands, self))
        return NotImplemented

    def __str__(self) -> str:
        return f"{self.matrix.name}{self.op.value}"

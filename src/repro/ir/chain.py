"""Symbolic chains, size symbols, equivalence classes, and instances.

A *symbolic chain* (the paper's *shape*) is a sequence of operands
``op(M_1) ... op(M_n)`` where matrix ``M_i`` has symbolic size
``q_{i-1} x q_i``.  Setting the size vector ``q = (q_0, ..., q_n)`` yields an
*instance*.  Matrices that are necessarily square bind adjacent size symbols
by equality; the resulting equivalence classes drive the variant selection of
Theorem 2.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, Sequence

from repro.errors import ShapeError
from repro.ir.matrix import Matrix
from repro.ir.operand import Operand


@dataclass(frozen=True)
class Chain:
    """A generalized matrix chain with symbolic sizes (a *shape*)."""

    operands: tuple[Operand, ...]

    def __post_init__(self) -> None:
        if not self.operands:
            raise ShapeError("a chain must contain at least one operand")
        if not all(isinstance(op, Operand) for op in self.operands):
            raise ShapeError("chain operands must be Operand objects")

    # -- basic accessors -----------------------------------------------------

    @property
    def n(self) -> int:
        """Number of matrices in the chain."""
        return len(self.operands)

    def __len__(self) -> int:
        return self.n

    def __iter__(self) -> Iterator[Operand]:
        return iter(self.operands)

    def __getitem__(self, i: int) -> Operand:
        return self.operands[i]

    @property
    def matrices(self) -> tuple[Matrix, ...]:
        return tuple(op.matrix for op in self.operands)

    def size_symbols(self) -> tuple[str, ...]:
        """Names of the ``n + 1`` symbolic sizes ``q_0 .. q_n``."""
        return tuple(f"q{i}" for i in range(self.n + 1))

    def __mul__(self, other):
        if isinstance(other, Matrix):
            other = other.as_operand()
        if isinstance(other, Operand):
            return Chain((*self.operands, other))
        if isinstance(other, Chain):
            return Chain((*self.operands, *other.operands))
        return NotImplemented

    # -- squareness and equivalence classes ----------------------------------

    def is_square_at(self, i: int) -> bool:
        """Whether matrix ``M_{i+1}`` (0-based index ``i``) must be square."""
        return self.operands[i].is_square

    def square_flags(self) -> tuple[bool, ...]:
        return tuple(op.is_square for op in self.operands)

    def equivalence_classes(self) -> list[tuple[int, ...]]:
        """Partition of size-symbol indices ``{0..n}`` under ``q_{i-1} ~ q_i``.

        Each square matrix ``M_i`` binds ``q_{i-1}`` and ``q_i`` by equality
        (Section V).  Returns the classes as sorted tuples of indices, in
        order of their smallest member.  The number of classes is
        ``n - n_sq + 1`` where ``n_sq`` is the number of square matrices.
        """
        parent = list(range(self.n + 1))

        def find(x: int) -> int:
            while parent[x] != x:
                parent[x] = parent[parent[x]]
                x = parent[x]
            return x

        for i, operand in enumerate(self.operands):
            if operand.is_square:
                ra, rb = find(i), find(i + 1)
                if ra != rb:
                    parent[max(ra, rb)] = min(ra, rb)

        classes: dict[int, list[int]] = {}
        for idx in range(self.n + 1):
            classes.setdefault(find(idx), []).append(idx)
        return [tuple(sorted(members)) for _, members in sorted(classes.items())]

    def class_of(self, i: int) -> tuple[int, ...]:
        """The equivalence class containing size symbol ``q_i``."""
        for cls in self.equivalence_classes():
            if i in cls:
                return cls
        raise ShapeError(f"size index {i} out of range 0..{self.n}")

    # -- instances -----------------------------------------------------------

    def validate_sizes(self, sizes: Sequence[int]) -> tuple[int, ...]:
        """Check that ``sizes`` is a valid instance vector for this shape.

        Raises :class:`ShapeError` when the length is wrong, a size is not a
        positive integer, or a necessarily-square matrix would receive a
        rectangular size.
        """
        q = tuple(int(s) for s in sizes)
        if len(q) != self.n + 1:
            raise ShapeError(
                f"expected {self.n + 1} sizes for a chain of {self.n} matrices, "
                f"got {len(q)}"
            )
        if any(s <= 0 for s in q):
            raise ShapeError(f"all sizes must be positive, got {q}")
        for i, operand in enumerate(self.operands):
            if operand.is_square and q[i] != q[i + 1]:
                raise ShapeError(
                    f"matrix {operand.matrix.name!r} must be square but got size "
                    f"{q[i]}x{q[i + 1]}"
                )
        return q

    def instance(self, sizes: Sequence[int]) -> "Instance":
        """Build a validated concrete :class:`Instance` of this shape."""
        return Instance(self, self.validate_sizes(sizes))

    # -- presentation ----------------------------------------------------------

    def shape_signature(self) -> str:
        """Canonical string identifying the shape (features + operators)."""
        parts = [
            f"{op.matrix.structure.value}:{op.matrix.prop.value}:{op.op.name}"
            for op in self.operands
        ]
        return "|".join(parts)

    def __str__(self) -> str:
        return " ".join(str(op) for op in self.operands)


@dataclass(frozen=True)
class Instance:
    """A chain with concrete sizes: the unit the dispatcher operates on."""

    chain: Chain
    sizes: tuple[int, ...]

    @property
    def n(self) -> int:
        return self.chain.n

    def matrix_dims(self, i: int) -> tuple[int, int]:
        """Concrete dimensions of matrix ``M_{i+1}`` *before* its unary op."""
        return self.sizes[i], self.sizes[i + 1]

    def result_dims(self) -> tuple[int, int]:
        """Dimensions of the chain's final result."""
        return self.sizes[0], self.sizes[-1]

    def __str__(self) -> str:
        return f"{self.chain} @ q={list(self.sizes)}"

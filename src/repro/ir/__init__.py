"""Expression intermediate representation for generalized matrix chains.

This subpackage defines the compile-time objects of the paper's Section III:
matrix *features* (structure + property), unary operators, operands, symbolic
chains and their size symbols, concrete instances, the input-language parser
for the grammar of Fig. 2, and the simplification rewrites of Section III-A.
"""

from repro.ir.features import Property, Structure
from repro.ir.matrix import Matrix
from repro.ir.operand import Operand, UnaryOp
from repro.ir.chain import Chain, Instance
from repro.ir.expression import ChainSum, ChainTerm
from repro.ir.parser import parse_program, parse_chain, parse_expression
from repro.ir.rewrites import simplify_chain
from repro.ir.structural import (
    structural_digest,
    structural_key,
    structurally_equal,
)

__all__ = [
    "structural_digest",
    "structural_key",
    "structurally_equal",
    "Structure",
    "Property",
    "Matrix",
    "UnaryOp",
    "Operand",
    "Chain",
    "Instance",
    "ChainSum",
    "ChainTerm",
    "parse_program",
    "parse_chain",
    "parse_expression",
    "simplify_chain",
]

"""Canonical structural keys for chains (content addressing).

The generalized matrix chain algorithm treats the chain *shape* — operand
features, unary operators, and the symbolic size-sharing pattern — as the
unit of compilation; concrete matrix names and sizes play no role until
dispatch.  This module canonicalizes a :class:`~repro.ir.chain.Chain` into a
structural key that is invariant under renaming of matrices: two chains that
are isomorphic (same features, same operators, same pattern of repeated
matrices) produce identical keys, so their compilations are interchangeable
once variants are rebound to the new chain.

The key feeds the content-addressed compilation cache
(:mod:`repro.compiler.cache`): structurally identical chains compile once.
"""

from __future__ import annotations

import hashlib

from repro.ir.chain import Chain

#: Bump when the key layout changes (invalidates on-disk cache entries).
STRUCTURAL_KEY_VERSION = 1


def structural_key(chain: Chain) -> tuple:
    """Canonical, hashable structural identity of a chain.

    The key records, per operand, the structure, property, and unary
    operator, plus the *sharing index*: the position of the operand's first
    occurrence of the same underlying matrix.  Matrix names are erased, so
    ``A * B * A`` and ``X * Y * X`` share a key while ``A * B * C`` does
    not.  Squareness (hence the size-symbol equivalence classes that drive
    Theorem 2 selection) is a function of the recorded features, so chains
    with equal keys have identical equivalence classes and identical
    variant sets up to matrix names.
    """
    first_seen: dict[str, int] = {}
    entries = []
    for i, operand in enumerate(chain):
        share = first_seen.setdefault(operand.matrix.name, i)
        entries.append(
            (
                operand.matrix.structure.name,
                operand.matrix.prop.name,
                operand.op.name,
                share,
            )
        )
    return (STRUCTURAL_KEY_VERSION, tuple(entries))


def structural_digest(chain: Chain) -> str:
    """Hex SHA-256 content address of :func:`structural_key`."""
    return hashlib.sha256(repr(structural_key(chain)).encode()).hexdigest()


def structurally_equal(a: Chain, b: Chain) -> bool:
    """Whether two chains are isomorphic up to matrix renaming."""
    return structural_key(a) == structural_key(b)

"""High-level facade: the code generator of Fig. 1 in one call.

:func:`compile_chain` takes a symbolic chain (or a program in the Fig. 2
input language), runs the full pass pipeline
(:mod:`repro.compiler.pipeline`) — simplification rewrites, essential set
selection per Theorem 2, optional greedy expansion per Algorithm 1 — and
returns a :class:`GeneratedCode` object bundling the variants, their cost
functions, the run-time dispatcher, and the C++ emission.

Both :func:`compile_chain` and :func:`compile_expression` are thin wrappers
over a shared :class:`~repro.compiler.session.CompilerSession`, so repeated
compilations of structurally identical chains hit the content-addressed
compilation cache.  Hold your own session (or use
:func:`CompilerSession.compile_many`) for batch workloads, and
:class:`repro.serve.CompileService` for concurrent serving (bounded queue,
worker pool, request coalescing).

The shared default session is created lazily under a lock
(:func:`get_default_session`, re-exported here), so concurrent first calls
to :func:`compile_chain` from many threads observe exactly one session and
one cache — safe to call straight from a multi-threaded server.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Mapping, Optional, Sequence

import numpy as np

from repro.ir.chain import Chain
from repro.runtime import CostEstimator, Dispatcher, flop_estimator
from repro.compiler.program import CompiledProgram
from repro.compiler.session import get_default_session, set_default_session
from repro.compiler.variant import Variant


@dataclass
class GeneratedCode:
    """The output of the code generator for one chain shape.

    Holds the selected variants (each the analogue of one generated C++
    function plus its cost function) and the dispatcher.  Calling the object
    evaluates an instance end to end: infer sizes, select the cheapest
    variant, execute it through the kernel substrate.

    The dispatcher is a *live runtime* (:mod:`repro.runtime`): it memoizes
    dispatch decisions and compiled execution plans per observed size
    vector, so repeated calls with same-size instances skip the cost sweep
    and re-validation entirely.  Hold one ``GeneratedCode`` per chain shape
    and call it many times — that is the serving hot path.
    """

    chain: Chain
    variants: list[Variant]
    dispatcher: Dispatcher
    training_instances: np.ndarray
    #: The portable compilation artifact this facade wraps (set by session
    #: compiles; ``None`` for hand-assembled instances — :meth:`to_program`
    #: builds one on demand).
    program: Optional[CompiledProgram] = None

    def __call__(self, *arrays) -> np.ndarray:
        return self.dispatcher(*arrays)

    def execute_many(
        self, instances: Sequence[Sequence[np.ndarray]]
    ) -> list[np.ndarray]:
        """Dispatch and execute a batch of instances (one per array list).

        All uncached size vectors share one broadcast cost sweep; see
        :meth:`repro.runtime.Dispatcher.execute_many`.
        """
        return self.dispatcher.execute_many(instances)

    def select(self, sizes: Sequence[int]) -> tuple[Variant, float]:
        """The variant the dispatcher would pick for an instance."""
        return self.dispatcher.select(sizes)

    def cpp_source(self, function_name: str = "evaluate_chain") -> str:
        """Emit the generated C++ translation unit (variants + dispatch)."""
        from repro.codegen.cpp_emitter import emit_cpp

        return emit_cpp(self.chain, self.variants, function_name=function_name)

    def python_source(self) -> str:
        """Emit a standalone Python module (numpy/scipy only) equivalent."""
        from repro.codegen.python_emitter import emit_python

        return emit_python(self.chain, self.variants)

    def to_json(self, indent: int | None = None) -> str:
        """Serialize the compiled variants (ship once, load anywhere)."""
        from repro.codegen import serialize

        return serialize.dumps(self.chain, self.variants, indent=indent)

    @staticmethod
    def from_json(
        payload: str,
        cost_estimator: CostEstimator = flop_estimator,
        backend: str = "reference",
    ) -> "GeneratedCode":
        """Rebuild generated code from :meth:`to_json` output."""
        from repro.codegen import serialize

        chain, variants = serialize.loads(payload)
        dispatcher = Dispatcher(
            chain, variants, cost_estimator=cost_estimator, backend=backend
        )
        return GeneratedCode(
            chain=chain,
            variants=variants,
            dispatcher=dispatcher,
            training_instances=np.empty((0, chain.n + 1)),
        )

    def to_program(self) -> CompiledProgram:
        """The versioned, serializable artifact for this compilation.

        Session compiles already carry one (with key and provenance); a
        hand-assembled ``GeneratedCode`` gets a bare artifact built from
        its own fields.
        """
        if self.program is not None:
            return self.program
        return CompiledProgram.from_artifacts(
            self.chain, tuple(self.variants), self.training_instances
        )

    def save(self, path, indent: int | None = 2) -> None:
        """Write the compilation artifact to ``path`` (see ``repro run``)."""
        self.to_program().save(path, indent=indent)

    @staticmethod
    def from_program(
        program: CompiledProgram,
        cost_estimator: Optional[CostEstimator] = None,
    ) -> "GeneratedCode":
        """The executable facade over a (possibly loaded) artifact.

        The default (``None``) estimator lets the program resolve its own
        cost model — the compile-time ``cost_model`` option and any
        shipped calibration — instead of forcing FLOPs.
        """
        return program.to_generated_code(cost_estimator)

    def report(self, num_instances: int = 300, seed: int = 0) -> str:
        """Markdown compilation report (variants, costs, win frequencies)."""
        from repro.analysis.report import chain_report

        return chain_report(
            self.chain, self.variants, num_instances=num_instances, seed=seed
        )

    def describe(self) -> str:
        lines = [f"generated code for chain {self.chain}"]
        for variant in self.variants:
            lines.append(variant.describe())
        return "\n".join(lines)

    def __len__(self) -> int:
        return len(self.variants)


def compile_chain(
    chain,
    *,
    expand_by: Optional[int] = None,
    training_instances: Optional[np.ndarray] = None,
    num_training_instances: Optional[int] = None,
    size_range: Optional[tuple[int, int]] = None,
    objective: Optional[str] = None,
    cost_estimator: Optional[CostEstimator] = None,
    seed: Optional[int] = None,
    simplify: Optional[bool] = None,
    variant_space: Optional[str] = None,
    max_variants: Optional[int] = None,
    backend: Optional[str] = None,
    cost_model: Optional[str] = None,
    use_cache: bool = True,
    session: Optional["CompilerSession"] = None,
) -> GeneratedCode:
    """Compile a symbolic chain into multi-versioned generated code.

    Parameters
    ----------
    chain:
        A :class:`~repro.ir.chain.Chain`, or a string in the input language
        of Fig. 2 (matrix definitions followed by the chain expression).
    expand_by:
        How many extra variants to add beyond the Theorem 2 base set with
        the greedy expansion of Algorithm 1 (``E_s1`` has ``expand_by=1``,
        ``E_s2`` has ``expand_by=2``, ...).  Defaults to 0.  Like the
        other knobs, omitting it defers to the session's own
        :class:`~repro.compiler.pipeline.CompileOptions` — only knobs you
        pass explicitly override the session defaults.
    training_instances:
        Instances used for representative selection and expansion; sampled
        uniformly from ``size_range`` when omitted.
    objective:
        ``"avg"`` (average penalty) or ``"max"`` (maximum penalty).
    cost_estimator:
        The cost function the run-time dispatcher uses (FLOPs by default;
        plug in a performance-model estimator for time-based dispatch).
    variant_space:
        Candidate-generation strategy: ``"exhaustive"`` (every
        parenthesization — the paper's set ``A``), ``"dp"`` (DP-seeded
        sparse pool, tractable for long chains), or ``"auto"`` (the
        default: exhaustive up to
        :data:`~repro.compiler.variant_space.AUTO_EXHAUSTIVE_MAX_N`
        matrices, DP-seeded beyond).
    max_variants:
        Bound on the candidate pool; fanning-out variants are never
        evicted.  ``None`` defers to the space's own default.
    backend:
        Execution-backend strategy of the built dispatcher:
        ``"reference"`` (the numpy kernel substrate), ``"blas"`` (direct
        ``scipy.linalg.blas``/``lapack`` lowering), or ``"auto"``
        (micro-benchmark both per memoized size vector, serve the
        measured winner).  A runtime knob — it never changes which
        variants are selected, and compilations differing only here share
        one cache entry.
    cost_model:
        Cost model of the built dispatcher: ``"flops"`` (analytic FLOP
        count, the default) or ``"calibrated"`` (feedback-directed
        per-kernel FLOP/s learned from measured timings; see
        :mod:`repro.perfmodel.feedback`).  Like ``backend``, a runtime
        knob excluded from the cache key.
    session:
        The :class:`~repro.compiler.session.CompilerSession` to compile in;
        defaults to the shared process-wide session (and its cache).
    """
    if session is None:
        session = get_default_session()
    return session.compile(
        chain,
        training_instances=training_instances,
        cost_estimator=cost_estimator,
        use_cache=use_cache,
        expand_by=expand_by,
        num_training_instances=num_training_instances,
        size_range=None if size_range is None else tuple(size_range),
        objective=objective,
        seed=seed,
        simplify=simplify,
        variant_space=variant_space,
        max_variants=max_variants,
        backend=backend,
        cost_model=cost_model,
    )


def load_program(
    path,
    cost_estimator: Optional[CostEstimator] = None,
    backend: Optional[str] = None,
) -> GeneratedCode:
    """Load a compilation artifact file into an executable ``GeneratedCode``.

    The file is the versioned :class:`~repro.compiler.program.CompiledProgram`
    wire format, as written by ``repro compile --output``,
    :meth:`GeneratedCode.save`, or a cache :class:`~repro.serve.DiskBackend`
    entry.  Loading reconstructs a working dispatcher without recompiling.
    ``backend`` overrides the artifact's own execution-backend snapshot
    (``repro run --backend``); the cost estimator likewise defaults to the
    artifact's own (its ``cost_model`` option, and shipped calibration —
    a warmed deployment's saved FLOP/s table dispatches immediately).
    """
    return CompiledProgram.load(path).to_generated_code(
        cost_estimator, backend=backend
    )


def compile_many(
    chains: Sequence,
    *,
    session: Optional["CompilerSession"] = None,
    **kwargs,
) -> list[GeneratedCode]:
    """Batch-compile chains; see :meth:`CompilerSession.compile_many`.

    Structurally identical chains compile once; distinct ones fan out over
    a thread pool.  Results match the input order and are identical to
    sequential :func:`compile_chain` calls with the same keyword knobs
    (``expand_by``, ``objective``, ..., plus a shared ``training_instances``
    array when every chain has the same length).
    """
    if session is None:
        session = get_default_session()
    return session.compile_many(chains, **kwargs)


# ---------------------------------------------------------------------------
# Sums of chains: the future-work extension (see repro.ir.expression).
# ---------------------------------------------------------------------------

@dataclass
class GeneratedExpression:
    """Generated code for a sum of chains.

    Each term owns its own multi-versioned :class:`GeneratedCode`; calling
    the object evaluates every term on the shared named arrays (the same
    matrix may appear in several terms) and accumulates the scaled results.
    """

    expression: "ChainSum"
    term_codes: list[GeneratedCode]

    def __call__(self, **arrays: np.ndarray) -> np.ndarray:
        term_sizes = self.expression.term_sizes(arrays)
        result: Optional[np.ndarray] = None
        for term, generated, sizes in zip(
            self.expression, self.term_codes, term_sizes
        ):
            term_arrays = [
                np.asarray(arrays[op.matrix.name]) for op in generated.chain
            ]
            value = term.coefficient * generated(*term_arrays)
            result = value if result is None else result + value
        assert result is not None
        return result

    def flop_cost(self, arrays: Mapping[str, np.ndarray]) -> float:
        """Dispatched FLOP cost of evaluating the expression on arrays."""
        term_sizes = self.expression.term_sizes(arrays)
        total = 0.0
        rows = cols = 0
        for generated, sizes in zip(self.term_codes, term_sizes):
            _, cost = generated.select(sizes)
            total += cost
            rows, cols = sizes[0], sizes[-1]
        return total + self.expression.addition_flops(rows, cols)

    def describe(self) -> str:
        lines = [f"generated code for expression {self.expression}"]
        for term, generated in zip(self.expression, self.term_codes):
            lines.append(f"term {term}:")
            for variant in generated.variants:
                lines.append("  " + variant.describe().replace("\n", "\n  "))
        return "\n".join(lines)

    def __len__(self) -> int:
        return len(self.term_codes)


def compile_expression(
    expression, *, session: Optional["CompilerSession"] = None, **kwargs
) -> GeneratedExpression:
    """Compile a sum of chains; see :func:`compile_chain` for the knobs.

    ``expression`` may be a :class:`~repro.ir.expression.ChainSum` or
    program source whose expression has one or more terms.  Each term's
    chain goes through the full pipeline (simplification, Theorem 2
    selection, optional expansion); term results are accumulated at run
    time.  Structurally identical terms share one cached compilation.

    A term whose chain simplifies to the identity matrix is rejected
    (:class:`ShapeError`), as for single-chain compilation.
    """
    if session is None:
        session = get_default_session()
    return session.compile_expression(expression, **kwargs)

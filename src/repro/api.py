"""High-level facade: the code generator of Fig. 1 in one call.

:func:`compile_chain` takes a symbolic chain (or a program in the Fig. 2
input language), runs the full pipeline — simplification rewrites, essential
set selection per Theorem 2, optional greedy expansion per Algorithm 1 —
and returns a :class:`GeneratedCode` object bundling the variants, their
cost functions, the run-time dispatcher, and the C++ emission.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Mapping, Optional, Sequence

import numpy as np

from repro.errors import CompilationError
from repro.ir.chain import Chain
from repro.ir.parser import parse_chain
from repro.ir.rewrites import simplify_chain
from repro.compiler.dispatch import CostEstimator, Dispatcher, flop_estimator
from repro.compiler.expansion import AveragePenalty, MaxPenalty, expand_set
from repro.compiler.selection import CostMatrix, all_variants, essential_set
from repro.compiler.variant import Variant
from repro.experiments.sampling import sample_instances


@dataclass
class GeneratedCode:
    """The output of the code generator for one chain shape.

    Holds the selected variants (each the analogue of one generated C++
    function plus its cost function) and the dispatcher.  Calling the object
    evaluates an instance end to end: infer sizes, select the cheapest
    variant, execute it through the kernel substrate.
    """

    chain: Chain
    variants: list[Variant]
    dispatcher: Dispatcher
    training_instances: np.ndarray

    def __call__(self, *arrays) -> np.ndarray:
        return self.dispatcher(*arrays)

    def select(self, sizes: Sequence[int]) -> tuple[Variant, float]:
        """The variant the dispatcher would pick for an instance."""
        return self.dispatcher.select(sizes)

    def cpp_source(self, function_name: str = "evaluate_chain") -> str:
        """Emit the generated C++ translation unit (variants + dispatch)."""
        from repro.codegen.cpp_emitter import emit_cpp

        return emit_cpp(self.chain, self.variants, function_name=function_name)

    def python_source(self) -> str:
        """Emit a standalone Python module (numpy/scipy only) equivalent."""
        from repro.codegen.python_emitter import emit_python

        return emit_python(self.chain, self.variants)

    def to_json(self, indent: int | None = None) -> str:
        """Serialize the compiled variants (ship once, load anywhere)."""
        from repro.codegen import serialize

        return serialize.dumps(self.chain, self.variants, indent=indent)

    @staticmethod
    def from_json(payload: str, cost_estimator: CostEstimator = flop_estimator) -> "GeneratedCode":
        """Rebuild generated code from :meth:`to_json` output."""
        from repro.codegen import serialize

        chain, variants = serialize.loads(payload)
        dispatcher = Dispatcher(chain, variants, cost_estimator=cost_estimator)
        return GeneratedCode(
            chain=chain,
            variants=variants,
            dispatcher=dispatcher,
            training_instances=np.empty((0, chain.n + 1)),
        )

    def report(self, num_instances: int = 300, seed: int = 0) -> str:
        """Markdown compilation report (variants, costs, win frequencies)."""
        from repro.analysis.report import chain_report

        return chain_report(
            self.chain, self.variants, num_instances=num_instances, seed=seed
        )

    def describe(self) -> str:
        lines = [f"generated code for chain {self.chain}"]
        for variant in self.variants:
            lines.append(variant.describe())
        return "\n".join(lines)

    def __len__(self) -> int:
        return len(self.variants)


def compile_chain(
    chain,
    *,
    expand_by: int = 0,
    training_instances: Optional[np.ndarray] = None,
    num_training_instances: int = 1000,
    size_range: tuple[int, int] = (2, 1000),
    objective: str = "avg",
    cost_estimator: CostEstimator = flop_estimator,
    seed: int = 0,
    simplify: bool = True,
) -> GeneratedCode:
    """Compile a symbolic chain into multi-versioned generated code.

    Parameters
    ----------
    chain:
        A :class:`~repro.ir.chain.Chain`, or a string in the input language
        of Fig. 2 (matrix definitions followed by the chain expression).
    expand_by:
        How many extra variants to add beyond the Theorem 2 base set with
        the greedy expansion of Algorithm 1 (``E_s1`` has ``expand_by=1``,
        ``E_s2`` has ``expand_by=2``, ...).
    training_instances:
        Instances used for representative selection and expansion; sampled
        uniformly from ``size_range`` when omitted.
    objective:
        ``"avg"`` (average penalty) or ``"max"`` (maximum penalty).
    cost_estimator:
        The cost function the run-time dispatcher uses (FLOPs by default;
        plug in a performance-model estimator for time-based dispatch).
    """
    if isinstance(chain, str):
        chain = parse_chain(chain)
    if not isinstance(chain, Chain):
        raise CompilationError(
            f"expected a Chain or program source, got {type(chain).__name__}"
        )
    if simplify:
        chain = simplify_chain(chain)

    if training_instances is None:
        rng = np.random.default_rng(seed)
        training_instances = sample_instances(
            chain, num_training_instances, rng, low=size_range[0], high=size_range[1]
        )

    if chain.n == 1:
        variants = [_single_variant(chain)]
    else:
        matrix = CostMatrix(all_variants(chain), training_instances)
        variants = essential_set(
            chain, cost_matrix=matrix, objective=objective
        )
        if expand_by > 0:
            scorer = AveragePenalty if objective == "avg" else MaxPenalty
            variants = expand_set(
                matrix,
                variants,
                max_size=len(variants) + expand_by,
                objective=lambda m, idx: scorer(m, idx),
            )

    dispatcher = Dispatcher(chain, variants, cost_estimator=cost_estimator)
    return GeneratedCode(
        chain=chain,
        variants=variants,
        dispatcher=dispatcher,
        training_instances=np.asarray(training_instances),
    )


def _single_variant(chain: Chain) -> Variant:
    """The (only) variant of a one-matrix chain: unary fix-ups."""
    from repro.compiler.parenthesization import leaf
    from repro.compiler.variant import build_variant

    return build_variant(chain, leaf(0), name="single")


# ---------------------------------------------------------------------------
# Sums of chains: the future-work extension (see repro.ir.expression).
# ---------------------------------------------------------------------------

@dataclass
class GeneratedExpression:
    """Generated code for a sum of chains.

    Each term owns its own multi-versioned :class:`GeneratedCode`; calling
    the object evaluates every term on the shared named arrays (the same
    matrix may appear in several terms) and accumulates the scaled results.
    """

    expression: "ChainSum"
    term_codes: list[GeneratedCode]

    def __call__(self, **arrays: np.ndarray) -> np.ndarray:
        term_sizes = self.expression.term_sizes(arrays)
        result: Optional[np.ndarray] = None
        for term, generated, sizes in zip(
            self.expression, self.term_codes, term_sizes
        ):
            term_arrays = [
                np.asarray(arrays[op.matrix.name]) for op in generated.chain
            ]
            value = term.coefficient * generated(*term_arrays)
            result = value if result is None else result + value
        assert result is not None
        return result

    def flop_cost(self, arrays: Mapping[str, np.ndarray]) -> float:
        """Dispatched FLOP cost of evaluating the expression on arrays."""
        term_sizes = self.expression.term_sizes(arrays)
        total = 0.0
        rows = cols = 0
        for generated, sizes in zip(self.term_codes, term_sizes):
            _, cost = generated.select(sizes)
            total += cost
            rows, cols = sizes[0], sizes[-1]
        return total + self.expression.addition_flops(rows, cols)

    def describe(self) -> str:
        lines = [f"generated code for expression {self.expression}"]
        for term, generated in zip(self.expression, self.term_codes):
            lines.append(f"term {term}:")
            for variant in generated.variants:
                lines.append("  " + variant.describe().replace("\n", "\n  "))
        return "\n".join(lines)

    def __len__(self) -> int:
        return len(self.term_codes)


def compile_expression(expression, **kwargs) -> GeneratedExpression:
    """Compile a sum of chains; see :func:`compile_chain` for the knobs.

    ``expression`` may be a :class:`~repro.ir.expression.ChainSum` or
    program source whose expression has one or more terms.  Each term's
    chain goes through the full pipeline (simplification, Theorem 2
    selection, optional expansion); term results are accumulated at run
    time.

    A term whose chain simplifies to the identity matrix is rejected
    (:class:`ShapeError`), as for single-chain compilation.
    """
    from repro.ir.expression import ChainSum
    from repro.ir.parser import parse_expression

    if isinstance(expression, str):
        expression = parse_expression(expression)
    if isinstance(expression, Chain):
        from repro.ir.expression import ChainTerm

        expression = ChainSum((ChainTerm(1.0, expression),))
    if not isinstance(expression, ChainSum):
        raise CompilationError(
            f"expected a ChainSum or program source, got "
            f"{type(expression).__name__}"
        )
    term_codes = [
        compile_chain(term.chain, **kwargs) for term in expression.terms
    ]
    return GeneratedExpression(expression=expression, term_codes=term_codes)

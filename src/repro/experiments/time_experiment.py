"""Experiment B: deviation from time-optimal (paper Section VII-B, Fig. 6).

Fixes n = 7 and samples random shapes (each matrix rectangular with
probability 50%, at least one rectangular per chain).  For each shape:

1. the Theorem 2 base set ``E_s`` is selected on FLOPs over a training set;
2. ``E_s`` is expanded by one variant twice: once with the FLOP objective
   (``E_s1,F``) and once with performance-model time estimates
   (``E_s1,M``);
3. on a validation set, every strategy is *dispatched* with its own cost
   estimator (FLOPs for ``E_s``/``E_s1,F``, model time for ``E_s1,M``) and
   charged the **true** machine time of the variant it picked;
4. ratios are taken against the true-time-optimal variant over all
   parenthesizations; the left-to-right variant ``L`` and the Armadillo
   model are included as references.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Sequence

import numpy as np

from repro.ir.chain import Chain
from repro.baselines.armadillo import ArmadilloEvaluator
from repro.compiler.expansion import AveragePenalty, expand_set
from repro.compiler.selection import CostMatrix, all_variants, essential_set
from repro.compiler.variant import Variant, build_variant
from repro.compiler.parenthesization import left_to_right_tree
from repro.experiments.ecdf import ECDF, format_summary_table, summarize_ratios
from repro.experiments.sampling import sample_instances, sample_shapes
from repro.perfmodel.machine import SimulatedMachine
from repro.perfmodel.models import PerformanceModelSet

SET_NAMES = ("Es", "Es1,F", "Es1,M", "L", "Arma")


@dataclass
class TimeExperimentResult:
    ratios: dict[str, np.ndarray] = field(default_factory=dict)
    shapes_tested: int = 0
    #: Mean true-time speedup of each generated flavour over Armadillo.
    speedup_over_armadillo: dict[str, float] = field(default_factory=dict)

    def ecdf(self, set_name: str) -> ECDF:
        return ECDF.from_sample(self.ratios[set_name])

    def summary_table(self) -> str:
        header = f"n = 7 ({self.shapes_tested} shapes)"
        table = format_summary_table(summarize_ratios(self.ratios))
        speedups = ", ".join(
            f"{name}: {value:.2f}x"
            for name, value in self.speedup_over_armadillo.items()
        )
        return "\n".join([header, table, f"mean speedup over Armadillo: {speedups}"])


def _dispatch_true_times(
    selected: Sequence[Variant],
    dispatch_costs: np.ndarray,
    true_times: np.ndarray,
    sig_to_idx: dict,
) -> np.ndarray:
    """True time of the variant each instance's dispatch would pick.

    ``dispatch_costs``/``true_times`` are (num_variants, num_instances)
    matrices over *all* variants; the subset rows are selected by signature.
    """
    indices = np.asarray([sig_to_idx[v.signature()] for v in selected], dtype=np.intp)
    sub_costs = dispatch_costs[indices]
    chosen = indices[np.argmin(sub_costs, axis=0)]
    return true_times[chosen, np.arange(true_times.shape[1])]


def evaluate_shape_time(
    chain: Chain,
    rng: np.random.Generator,
    machine: SimulatedMachine,
    models: PerformanceModelSet,
    train_instances: int = 2000,
    val_instances: int = 200,
    low: int = 50,
    high: int = 1000,
) -> dict[str, np.ndarray]:
    """Per-instance true-time ratios over optimum of each strategy."""
    variants = all_variants(chain)
    train = sample_instances(chain, train_instances, rng, low=low, high=high)
    flop_train = CostMatrix(variants, train)
    base = essential_set(chain, cost_matrix=flop_train, objective="avg")
    es1_f = expand_set(
        flop_train, base, max_size=len(base) + 1, objective=AveragePenalty
    )
    model_train = CostMatrix(
        variants, train, evaluator=models.variant_time_many
    )
    es1_m = expand_set(
        model_train, base, max_size=len(base) + 1, objective=AveragePenalty
    )
    ltr = build_variant(chain, left_to_right_tree(chain.n), name="L")

    val = sample_instances(chain, val_instances, rng, low=low, high=high)
    val_f = val.astype(np.float64)
    flop_costs = np.stack([v.flop_cost_many(val_f) for v in variants])
    model_costs = np.stack([models.variant_time_many(v, val_f) for v in variants])
    true_times = np.stack([machine.variant_time_many(v, val_f) for v in variants])
    optimal = true_times.min(axis=0)
    sig_to_idx = {v.signature(): i for i, v in enumerate(variants)}

    ratios: dict[str, np.ndarray] = {}
    ratios["Es"] = (
        _dispatch_true_times(base, flop_costs, true_times, sig_to_idx) / optimal
    )
    ratios["Es1,F"] = (
        _dispatch_true_times(es1_f, flop_costs, true_times, sig_to_idx) / optimal
    )
    ratios["Es1,M"] = (
        _dispatch_true_times(es1_m, model_costs, true_times, sig_to_idx) / optimal
    )
    ratios["L"] = true_times[sig_to_idx[ltr.signature()]] / optimal

    arma = ArmadilloEvaluator(chain)
    ratios["Arma"] = arma.time_many(machine, val_f) / optimal
    return ratios


def run_time_experiment(
    num_shapes: int = 100,
    n: int = 7,
    train_instances: int = 2000,
    val_instances: int = 200,
    low: int = 50,
    high: int = 1000,
    seed: int = 0,
    machine: Optional[SimulatedMachine] = None,
    verbose: bool = False,
) -> TimeExperimentResult:
    """Run Experiment B.  Paper scale: ``num_shapes=1000, val_instances=1000``."""
    machine = machine or SimulatedMachine()
    models = PerformanceModelSet(machine)
    rng = np.random.default_rng(seed)
    shapes = sample_shapes(n, num_shapes, rng, rectangular_probability=0.5)

    accumulators: dict[str, list[np.ndarray]] = {k: [] for k in SET_NAMES}
    for i, chain in enumerate(shapes):
        ratios = evaluate_shape_time(
            chain,
            rng,
            machine,
            models,
            train_instances=train_instances,
            val_instances=val_instances,
            low=low,
            high=high,
        )
        for name, values in ratios.items():
            accumulators[name].append(values)
        if verbose and (i + 1) % 10 == 0:
            print(f"  {i + 1}/{len(shapes)} shapes done")

    result = TimeExperimentResult(shapes_tested=len(shapes))
    result.ratios = {
        name: np.concatenate(chunks) for name, chunks in accumulators.items()
    }
    arma = result.ratios["Arma"]
    for name in ("Es", "Es1,F", "Es1,M"):
        result.speedup_over_armadillo[name] = float(
            np.mean(arma / result.ratios[name])
        )
    return result

"""Plain-text rendering of the paper's eCDF figures.

Figures 5 and 6 plot empirical CDFs of per-instance ratios over optimum.
This module renders the same curves as ASCII charts so the CLI (and the
benchmark harness) can *show* the figures, not just tabulate them.  One
character column per x-sample, one row per 5% of instances, one letter per
variant set.
"""

from __future__ import annotations

from typing import Mapping, Sequence

import numpy as np

from repro.experiments.ecdf import ECDF

#: Plot symbols per set, assigned in insertion order.
SYMBOLS = "EsxLAbcdef"


def render_ecdf_chart(
    ratios_by_set: Mapping[str, np.ndarray],
    x_min: float = 1.0,
    x_max: float = 1.5,
    width: int = 60,
    height: int = 20,
    title: str = "",
) -> str:
    """Render eCDF curves as an ASCII chart.

    The y-axis is the percentage of instances with ratio <= x (0..100%);
    the x-axis spans ``[x_min, x_max]``.  Curves are drawn with one symbol
    per set; where several sets coincide the later-drawn symbol wins.
    """
    if not ratios_by_set:
        raise ValueError("nothing to plot")
    xs = np.linspace(x_min, x_max, width)
    grid = [[" "] * width for _ in range(height)]

    # Prefer each set's first character as its plot symbol; fall back to a
    # fixed pool when names collide (e.g. Es / Es1,F / Es1,M).
    used: set[str] = set()
    symbols: list[str] = []
    for name in ratios_by_set:
        preferred = next(
            (ch for ch in name if ch.isalnum() and ch not in used), None
        )
        if preferred is None:
            preferred = next(ch for ch in SYMBOLS if ch not in used)
        used.add(preferred)
        symbols.append(preferred)

    legend = []
    for index, (name, ratios) in enumerate(ratios_by_set.items()):
        symbol = symbols[index]
        legend.append(f"{symbol} = {name}")
        ecdf = ECDF.from_sample(ratios)
        for col, x in enumerate(xs):
            fraction = ecdf.fraction_at_or_below(float(x))
            row = height - 1 - min(height - 1, int(fraction * height))
            grid[row][col] = symbol

    lines = []
    if title:
        lines.append(title)
    for row_index, row in enumerate(grid):
        percent = 100 * (height - row_index) / height
        prefix = f"{percent:5.0f}% |" if row_index % 4 == 0 else "       |"
        lines.append(prefix + "".join(row))
    lines.append("       +" + "-" * width)
    labels = f"{x_min:<8g}{'ratio over optimal':^{max(0, width - 16)}}{x_max:>8g}"
    lines.append("        " + labels)
    lines.append("legend: " + ", ".join(legend))
    return "\n".join(lines)


def render_fig5(result, n: int, **kwargs) -> str:
    """ASCII rendering of one Fig. 5 panel from a FlopsExperimentResult."""
    return render_ecdf_chart(
        result.ratios[n],
        title=f"Fig. 5 (n = {n}): eCDF of ratio over optimal FLOPs",
        **kwargs,
    )


def render_fig6(result, x_max: float = 3.0, **kwargs) -> str:
    """ASCII rendering of Fig. 6 from a TimeExperimentResult."""
    return render_ecdf_chart(
        result.ratios,
        x_max=x_max,
        title="Fig. 6: eCDF of ratio over optimal execution time",
        **kwargs,
    )

"""Experiment A: deviation from FLOP-optimal (paper Section VII-A, Fig. 5).

For each shape, the harness:

1. builds all variants (one per parenthesization);
2. samples a training set of instances and constructs the Theorem 2 base
   set ``E_s`` minimizing the average penalty;
3. expands ``E_s`` by one and two variants with Algorithm 1 (``E_s1``,
   ``E_s2``);
4. on a fresh validation set, computes the per-instance ratio of the best
   variant in each set over the optimum, for the four sets
   ``E_s``, ``E_s1``, ``E_s2``, and the left-to-right singleton ``L``.

The paper enumerates *all* ``10^n - 9^n`` shapes for n = 5, 6, 7 with 10^5
training and 10^3 validation instances per shape (~4x10^7 evaluations); the
harness accepts scale knobs so CI-sized runs finish in minutes while
``shapes_per_n=None`` reproduces the full enumeration.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Optional, Sequence

import numpy as np

from repro.ir.chain import Chain
from repro.compiler.expansion import AveragePenalty, expand_set
from repro.compiler.selection import CostMatrix, all_variants, essential_set
from repro.compiler.variant import Variant, build_variant
from repro.compiler.parenthesization import left_to_right_tree
from repro.experiments.ecdf import ECDF, format_summary_table, summarize_ratios
from repro.experiments.sampling import (
    enumerate_shapes,
    sample_instances,
    sample_shapes,
)

SET_NAMES = ("Es", "Es1", "Es2", "L")


@dataclass
class FlopsExperimentResult:
    """Per-set ratio samples, pooled across shapes, keyed by chain length."""

    ratios: dict[int, dict[str, np.ndarray]] = field(default_factory=dict)
    shapes_tested: dict[int, int] = field(default_factory=dict)

    def ecdf(self, n: int, set_name: str) -> ECDF:
        return ECDF.from_sample(self.ratios[n][set_name])

    def pooled(self) -> dict[str, np.ndarray]:
        """Ratios pooled over all chain lengths, per set."""
        pooled: dict[str, np.ndarray] = {}
        for name in SET_NAMES:
            samples = [r[name] for r in self.ratios.values() if name in r]
            pooled[name] = np.concatenate(samples)
        return pooled

    def summary_table(self) -> str:
        blocks = []
        for n, ratios in sorted(self.ratios.items()):
            rows = summarize_ratios(ratios)
            blocks.append(f"n = {n} ({self.shapes_tested[n]} shapes)")
            blocks.append(format_summary_table(rows))
        return "\n".join(blocks)


def evaluate_shape(
    chain: Chain,
    rng: np.random.Generator,
    train_instances: int = 2000,
    val_instances: int = 1000,
    low: int = 2,
    high: int = 1000,
    expansions: Sequence[int] = (1, 2),
) -> dict[str, np.ndarray]:
    """Per-instance ratios over optimum of each set, on one shape."""
    variants = all_variants(chain)
    train = sample_instances(chain, train_instances, rng, low=low, high=high)
    train_matrix = CostMatrix(variants, train)

    base = essential_set(chain, cost_matrix=train_matrix, objective="avg")
    sets: dict[str, list[Variant]] = {"Es": base}
    for extra in expansions:
        sets[f"Es{extra}"] = expand_set(
            train_matrix, base, max_size=len(base) + extra, objective=AveragePenalty
        )
    sets["L"] = [build_variant(chain, left_to_right_tree(chain.n), name="L")]

    val = sample_instances(chain, val_instances, rng, low=low, high=high)
    val_matrix = CostMatrix(variants, val)
    sig_to_idx = {v.signature(): i for i, v in enumerate(val_matrix.variants)}

    ratios: dict[str, np.ndarray] = {}
    for name, selected in sets.items():
        indices = [sig_to_idx[v.signature()] for v in selected]
        ratios[name] = val_matrix.ratios(indices)
    return ratios


def run_flops_experiment(
    n_values: Iterable[int] = (5, 6, 7),
    shapes_per_n: Optional[int] = 50,
    train_instances: int = 2000,
    val_instances: int = 200,
    low: int = 2,
    high: int = 1000,
    seed: int = 0,
    verbose: bool = False,
) -> FlopsExperimentResult:
    """Run Experiment A.  ``shapes_per_n=None`` enumerates all shapes.

    Defaults are CI-scale; the paper's configuration is
    ``shapes_per_n=None, train_instances=100_000, val_instances=1000``.
    """
    result = FlopsExperimentResult()
    for n in n_values:
        rng = np.random.default_rng(seed + n)
        if shapes_per_n is None:
            shapes: list[Chain] = list(enumerate_shapes(n))
        else:
            shapes = sample_shapes(n, shapes_per_n, rng, rectangular_probability=None)
        accumulators: dict[str, list[np.ndarray]] = {k: [] for k in SET_NAMES}
        for i, chain in enumerate(shapes):
            ratios = evaluate_shape(
                chain,
                rng,
                train_instances=train_instances,
                val_instances=val_instances,
                low=low,
                high=high,
            )
            for name, values in ratios.items():
                accumulators[name].append(values)
            if verbose and (i + 1) % 10 == 0:
                print(f"  n={n}: {i + 1}/{len(shapes)} shapes done")
        result.ratios[n] = {
            name: np.concatenate(chunks) for name, chunks in accumulators.items()
        }
        result.shapes_tested[n] = len(shapes)
    return result

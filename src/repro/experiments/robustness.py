"""Robustness of the selection under training/validation distribution shift.

The paper trains its base sets and expansions on instances sampled from the
same distribution as the validation set.  In deployment, run-time sizes can
drift away from whatever the compile-time tuning assumed.  The theory is
exactly what protects against this: Theorem 2's guarantee is *distribution
free* (the penalty bound holds on every instance), while the greedy
expansion is tuned to the training distribution and may lose some of its
edge out of distribution.

This harness quantifies both effects: it selects/tunes on a training range
and validates on shifted ranges, reporting the mean and maximum ratio over
optimum per set and shift.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from repro.ir.chain import Chain
from repro.compiler.expansion import AveragePenalty, expand_set
from repro.compiler.selection import CostMatrix, all_variants, essential_set
from repro.experiments.sampling import sample_instances, sample_shapes


@dataclass(frozen=True)
class ShiftResult:
    """Ratios over optimum of each set on one validation range."""

    label: str
    low: int
    high: int
    ratios: dict[str, np.ndarray]

    def summary(self) -> str:
        parts = []
        for name, values in self.ratios.items():
            parts.append(
                f"{name}: mean {values.mean():.3f} max {values.max():.2f}"
            )
        return f"[{self.label}: sizes {self.low}..{self.high}] " + "  ".join(parts)


def run_shift_study(
    n: int = 6,
    num_shapes: int = 8,
    train_range: tuple[int, int] = (2, 200),
    validation_ranges: Sequence[tuple[str, int, int]] = (
        ("in-distribution", 2, 200),
        ("moderate shift", 200, 1000),
        ("extreme shift", 1000, 5000),
    ),
    train_instances: int = 1000,
    val_instances: int = 200,
    seed: int = 0,
) -> list[ShiftResult]:
    """Train on one size range, validate on shifted ranges."""
    rng = np.random.default_rng(seed)
    shapes = sample_shapes(n, num_shapes, rng, rectangular_probability=0.5)

    selections = []
    for chain in shapes:
        variants = all_variants(chain)
        train = sample_instances(
            chain, train_instances, rng, low=train_range[0], high=train_range[1]
        )
        matrix = CostMatrix(variants, train)
        base = essential_set(chain, cost_matrix=matrix)
        expanded = expand_set(
            matrix, base, max_size=len(base) + 1, objective=AveragePenalty
        )
        selections.append((chain, variants, base, expanded))

    results = []
    for label, low, high in validation_ranges:
        accumulators: dict[str, list[np.ndarray]] = {"Es": [], "Es1": []}
        for chain, variants, base, expanded in selections:
            val = sample_instances(chain, val_instances, rng, low=low, high=high)
            matrix = CostMatrix(variants, val)
            sig_to_idx = {
                v.signature(): i for i, v in enumerate(matrix.variants)
            }
            for name, selected in (("Es", base), ("Es1", expanded)):
                idx = [sig_to_idx[v.signature()] for v in selected]
                accumulators[name].append(matrix.ratios(idx))
        results.append(
            ShiftResult(
                label=label,
                low=low,
                high=high,
                ratios={
                    name: np.concatenate(chunks)
                    for name, chunks in accumulators.items()
                },
            )
        )
    return results

"""Compile-time scaling study: why multi-versioning needs small sets.

The paper's motivation in one table: the number of parenthesizations grows
as the Catalan numbers (generating code for all of them is prohibitive),
while the fanning-out set grows linearly and the Theorem 2 essential set is
bounded by the number of size-symbol equivalence classes.  This harness
measures, per chain length:

* ``C(n-1)`` — candidate variants;
* the fanning-out set size (``n - 1`` or ``n + 1``);
* the average essential-set size over sampled shapes;
* wall-clock compile time for the essential-set pipeline;
* emitted C++ size for the essential set vs the full enumeration.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Iterable

import numpy as np

from repro.codegen.cpp_emitter import emit_cpp
from repro.compiler.parenthesization import catalan
from repro.compiler.selection import (
    CostMatrix,
    all_variants,
    essential_set,
    fanning_out_variants,
)
from repro.experiments.sampling import sample_instances, sample_shapes


@dataclass(frozen=True)
class ScalingRow:
    n: int
    parenthesizations: int
    fanning_out: int
    avg_essential: float
    compile_seconds: float
    essential_cpp_lines: int
    full_cpp_lines: int

    def format(self) -> str:
        return (
            f"n={self.n}: C={self.parenthesizations:5d}  |E|={self.fanning_out:2d}  "
            f"|E_s|~{self.avg_essential:4.1f}  compile {self.compile_seconds * 1e3:7.1f} ms  "
            f"C++ lines {self.essential_cpp_lines:5d} (E_s) vs "
            f"{self.full_cpp_lines:6d} (all)"
        )


def run_scaling_study(
    n_values: Iterable[int] = (3, 4, 5, 6, 7, 8),
    shapes_per_n: int = 3,
    train_instances: int = 300,
    seed: int = 0,
) -> list[ScalingRow]:
    """Measure compile-time and code-size scaling across chain lengths."""
    rows: list[ScalingRow] = []
    for n in n_values:
        rng = np.random.default_rng(seed + n)
        shapes = sample_shapes(n, shapes_per_n, rng, rectangular_probability=0.5)
        essential_sizes = []
        start = time.perf_counter()
        last_selected = None
        last_chain = None
        for chain in shapes:
            train = sample_instances(chain, train_instances, rng)
            matrix = CostMatrix(all_variants(chain), train)
            selected = essential_set(chain, cost_matrix=matrix)
            essential_sizes.append(len(selected))
            last_selected, last_chain = selected, chain
        compile_seconds = (time.perf_counter() - start) / len(shapes)

        assert last_selected is not None and last_chain is not None
        essential_lines = len(emit_cpp(last_chain, last_selected).splitlines())
        full_lines = len(
            emit_cpp(last_chain, all_variants(last_chain)).splitlines()
        )
        rows.append(
            ScalingRow(
                n=n,
                parenthesizations=catalan(n - 1),
                fanning_out=len(fanning_out_variants(shapes[0])),
                avg_essential=float(np.mean(essential_sizes)),
                compile_seconds=compile_seconds,
                essential_cpp_lines=essential_lines,
                full_cpp_lines=full_lines,
            )
        )
    return rows


def format_scaling_table(rows: list[ScalingRow]) -> str:
    return "\n".join(row.format() for row in rows)

"""Experiment harnesses reproducing the paper's evaluation (Section VII)."""

from repro.experiments.sampling import (
    MATRIX_OPTIONS,
    EXTENDED_MATRIX_OPTIONS,
    RECTANGULAR_OPTION,
    enumerate_shapes,
    sample_shapes,
    sample_instances,
    option_to_operand,
)
from repro.experiments.ecdf import ECDF, summarize_ratios
from repro.experiments.figures import render_ecdf_chart
from repro.experiments.coverage import kernel_census

__all__ = [
    "MATRIX_OPTIONS",
    "EXTENDED_MATRIX_OPTIONS",
    "RECTANGULAR_OPTION",
    "enumerate_shapes",
    "sample_shapes",
    "sample_instances",
    "option_to_operand",
    "ECDF",
    "summarize_ratios",
    "render_ecdf_chart",
    "kernel_census",
]

"""Empirical cumulative distribution functions and summary statistics.

Figures 5 and 6 of the paper report eCDFs of the per-instance ratio over
optimum; the surrounding prose quotes percentiles ("ratio at or below 1.2 on
96% of instances") and extrema.  This module computes both.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np


@dataclass(frozen=True)
class ECDF:
    """An empirical CDF over a sample of ratios (values >= 1)."""

    values: np.ndarray  # sorted ascending

    @staticmethod
    def from_sample(sample: Sequence[float]) -> "ECDF":
        values = np.sort(np.asarray(sample, dtype=np.float64))
        if values.size == 0:
            raise ValueError("cannot build an eCDF from an empty sample")
        return ECDF(values)

    def fraction_at_or_below(self, x: float) -> float:
        """``P(value <= x)`` — the y-axis of Figs. 5 and 6 (0..1)."""
        return float(np.searchsorted(self.values, x, side="right")) / self.values.size

    def quantile(self, p: float) -> float:
        """Smallest x with ``P(value <= x) >= p``."""
        if not 0.0 <= p <= 1.0:
            raise ValueError(f"p must be in [0, 1], got {p}")
        idx = min(
            self.values.size - 1, max(0, int(np.ceil(p * self.values.size)) - 1)
        )
        return float(self.values[idx])

    @property
    def max(self) -> float:
        return float(self.values[-1])

    @property
    def min(self) -> float:
        return float(self.values[0])

    @property
    def mean(self) -> float:
        return float(self.values.mean())

    def curve(self, xs: Sequence[float]) -> list[tuple[float, float]]:
        """Sampled (x, fraction) pairs for plotting/printing the eCDF."""
        return [(float(x), self.fraction_at_or_below(float(x))) for x in xs]


def summarize_ratios(
    ratios_by_set: dict[str, np.ndarray],
    thresholds: Sequence[float] = (1.05, 1.1, 1.2, 1.5, 2.0),
) -> list[dict[str, float | str]]:
    """Summary rows (one per variant set) in the style of the paper's prose.

    For each set: the worst and mean ratio and the percentage of instances
    at or below each threshold.
    """
    rows: list[dict[str, float | str]] = []
    for name, ratios in ratios_by_set.items():
        ecdf = ECDF.from_sample(ratios)
        row: dict[str, float | str] = {
            "set": name,
            "max": ecdf.max,
            "mean": ecdf.mean,
        }
        for t in thresholds:
            row[f"<= {t:g}"] = 100.0 * ecdf.fraction_at_or_below(t)
        rows.append(row)
    return rows


def format_summary_table(rows: list[dict[str, float | str]]) -> str:
    """Plain-text table of :func:`summarize_ratios` rows."""
    if not rows:
        return "(no data)"
    headers = list(rows[0].keys())
    widths = {
        h: max(len(str(h)), *(len(_fmt(row[h])) for row in rows)) for h in headers
    }
    lines = [
        "  ".join(str(h).rjust(widths[h]) for h in headers),
        "  ".join("-" * widths[h] for h in headers),
    ]
    for row in rows:
        lines.append("  ".join(_fmt(row[h]).rjust(widths[h]) for h in headers))
    return "\n".join(lines)


def _fmt(value) -> str:
    if isinstance(value, float):
        return f"{value:.2f}"
    return str(value)

"""Shape and instance sampling for the experiments (paper Section VII).

The experiments restrict matrix features to **ten options per matrix** (no
transpositions):

1.  a general, possibly singular matrix — the only option that permits a
    rectangular matrix;
2.  an inverted general (hence non-singular) matrix;
3.  a symmetric positive-definite matrix;
4.  an inverted symmetric positive-definite matrix;
5.  a lower-triangular (possibly singular) matrix;
6.  a non-singular lower-triangular matrix;
7.  an inverted lower-triangular matrix;
8-10. the three upper-triangular counterparts of 5-7.

Nine of the ten options imply a square matrix; requiring at least one
rectangular matrix per chain yields ``10^n - 9^n`` shapes for length ``n``.

Instances are sampled by drawing one size per size-symbol equivalence class
uniformly from an integer range, so that square matrices always receive
consistent sizes.
"""

from __future__ import annotations

import itertools
from typing import Iterator, Sequence

import numpy as np

from repro.ir.chain import Chain
from repro.ir.features import Property, Structure
from repro.ir.matrix import Matrix
from repro.ir.operand import Operand, UnaryOp

#: The ten feature options of Section VII-A: (structure, property, op).
MATRIX_OPTIONS: tuple[tuple[Structure, Property, UnaryOp], ...] = (
    (Structure.GENERAL, Property.SINGULAR, UnaryOp.NONE),
    (Structure.GENERAL, Property.NON_SINGULAR, UnaryOp.INVERSE),
    (Structure.SYMMETRIC, Property.SPD, UnaryOp.NONE),
    (Structure.SYMMETRIC, Property.SPD, UnaryOp.INVERSE),
    (Structure.LOWER_TRIANGULAR, Property.SINGULAR, UnaryOp.NONE),
    (Structure.LOWER_TRIANGULAR, Property.NON_SINGULAR, UnaryOp.NONE),
    (Structure.LOWER_TRIANGULAR, Property.NON_SINGULAR, UnaryOp.INVERSE),
    (Structure.UPPER_TRIANGULAR, Property.SINGULAR, UnaryOp.NONE),
    (Structure.UPPER_TRIANGULAR, Property.NON_SINGULAR, UnaryOp.NONE),
    (Structure.UPPER_TRIANGULAR, Property.NON_SINGULAR, UnaryOp.INVERSE),
)

#: Index (into MATRIX_OPTIONS) of the only rectangular-capable option.
RECTANGULAR_OPTION = 0

#: The ten paper options plus three diagonal ones (extension experiments).
EXTENDED_MATRIX_OPTIONS: tuple[tuple[Structure, Property, UnaryOp], ...] = (
    *MATRIX_OPTIONS,
    (Structure.DIAGONAL, Property.SINGULAR, UnaryOp.NONE),
    (Structure.DIAGONAL, Property.NON_SINGULAR, UnaryOp.NONE),
    (Structure.DIAGONAL, Property.NON_SINGULAR, UnaryOp.INVERSE),
)


def option_to_operand(
    option_index: int,
    name: str,
    options: Sequence[tuple[Structure, Property, UnaryOp]] = MATRIX_OPTIONS,
) -> Operand:
    """Materialize one of the feature options as a chain operand."""
    structure, prop, op = options[option_index]
    return Operand(Matrix(name, structure, prop), op)


def shape_from_options(
    options: Sequence[int],
    option_space: Sequence[tuple[Structure, Property, UnaryOp]] = MATRIX_OPTIONS,
) -> Chain:
    """Build a chain shape from a tuple of option indices."""
    return Chain(
        tuple(
            option_to_operand(opt, f"M{i + 1}", option_space)
            for i, opt in enumerate(options)
        )
    )


def enumerate_shapes(n: int) -> Iterator[Chain]:
    """All ``10^n - 9^n`` shapes of length ``n`` with >= 1 rectangular matrix."""
    for options in itertools.product(range(len(MATRIX_OPTIONS)), repeat=n):
        if RECTANGULAR_OPTION in options:
            yield shape_from_options(options)


def count_shapes(n: int) -> int:
    """``10^n - 9^n``: number of admissible shapes of length ``n``."""
    k = len(MATRIX_OPTIONS)
    return k**n - (k - 1) ** n


def sample_shapes(
    n: int,
    count: int,
    rng: np.random.Generator,
    rectangular_probability: float = 0.5,
    option_space: Sequence[tuple[Structure, Property, UnaryOp]] = MATRIX_OPTIONS,
) -> list[Chain]:
    """Random shapes as in the execution-time experiment (Section VII-B).

    Each matrix is rectangular-capable (option 1) with probability
    ``rectangular_probability`` and otherwise draws uniformly among the
    square options; shapes without any rectangular matrix are rejected and
    resampled.  With ``rectangular_probability=None`` the options are drawn
    uniformly among the whole space, matching the FLOP experiment's
    enumeration distribution instead.  Pass
    ``option_space=EXTENDED_MATRIX_OPTIONS`` to include diagonal matrices.
    """
    shapes: list[Chain] = []
    square_options = [
        i for i in range(len(option_space)) if i != RECTANGULAR_OPTION
    ]
    while len(shapes) < count:
        options = []
        for _ in range(n):
            if rectangular_probability is None:
                options.append(int(rng.integers(0, len(option_space))))
            elif rng.random() < rectangular_probability:
                options.append(RECTANGULAR_OPTION)
            else:
                options.append(
                    square_options[int(rng.integers(0, len(square_options)))]
                )
        if RECTANGULAR_OPTION not in options:
            continue
        shapes.append(shape_from_options(options, option_space))
    return shapes


def sample_instances(
    chain: Chain,
    count: int,
    rng: np.random.Generator,
    low: int = 2,
    high: int = 1000,
) -> np.ndarray:
    """Sample ``count`` valid instances uniformly with sizes in [low, high].

    One size is drawn per size-symbol equivalence class so that square
    matrices always receive equal adjacent sizes.  Returns an integer array
    of shape ``(count, n + 1)``.
    """
    classes = chain.equivalence_classes()
    sizes = np.empty((count, chain.n + 1), dtype=np.int64)
    for cls in classes:
        draws = rng.integers(low, high + 1, size=count)
        for idx in cls:
            sizes[:, idx] = draws
    return sizes

"""Kernel usage census over the shape space.

Which Table I kernels does the compiler actually emit, and how often?  The
census walks shapes (enumerated or sampled), builds all (or selected)
variants, and counts kernel occurrences — an empirical regeneration of
Table I's "Associations" column, and a quick way to spot dead table entries
after a change to the rewrite rules.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass
from typing import Iterable, Optional, Sequence

import numpy as np

from repro.ir.chain import Chain
from repro.compiler.selection import all_variants
from repro.experiments.sampling import (
    MATRIX_OPTIONS,
    enumerate_shapes,
    sample_shapes,
)


@dataclass(frozen=True)
class KernelCensus:
    """Kernel occurrence counts over a set of shapes."""

    counts: Counter
    shapes: int
    variants: int

    @property
    def total_calls(self) -> int:
        return sum(self.counts.values())

    def frequency(self, kernel: str) -> float:
        """Fraction of all emitted kernel calls using this kernel."""
        if self.total_calls == 0:
            return 0.0
        return self.counts.get(kernel, 0) / self.total_calls

    def unused_kernels(self) -> list[str]:
        """Binary kernels from the registry that never appeared."""
        from repro.kernels.spec import (
            DIAGONAL_KERNELS,
            PRODUCT_KERNELS,
            SOLVE_KERNELS,
        )

        return sorted(
            kernel.name
            for kernel in (*PRODUCT_KERNELS, *SOLVE_KERNELS, *DIAGONAL_KERNELS)
            if kernel.name not in self.counts
        )

    def format_table(self, top: Optional[int] = None) -> str:
        rows = [f"{'kernel':<10} {'calls':>8} {'share':>7}"]
        items = self.counts.most_common(top)
        for kernel, count in items:
            rows.append(
                f"{kernel:<10} {count:>8} {100 * self.frequency(kernel):6.1f}%"
            )
        rows.append(
            f"({self.shapes} shapes, {self.variants} variants, "
            f"{self.total_calls} kernel calls)"
        )
        return "\n".join(rows)


def kernel_census(
    shapes: Iterable[Chain],
    per_shape_variants: Optional[int] = None,
) -> KernelCensus:
    """Count kernel occurrences across all variants of the given shapes."""
    counts: Counter = Counter()
    num_shapes = 0
    num_variants = 0
    for chain in shapes:
        num_shapes += 1
        variants = all_variants(chain)
        if per_shape_variants is not None:
            variants = variants[:per_shape_variants]
        for variant in variants:
            num_variants += 1
            for name in variant.kernel_names:
                counts[name] += 1
    return KernelCensus(counts=counts, shapes=num_shapes, variants=num_variants)


def census_of_option_space(
    n: int,
    sample: Optional[int] = None,
    seed: int = 0,
) -> KernelCensus:
    """Census over the paper's 10-option shape space of length ``n``.

    ``sample=None`` enumerates all ``10^n - 9^n`` shapes (feasible for
    ``n <= 3``); otherwise a seeded sample is drawn.
    """
    if sample is None:
        shapes: Iterable[Chain] = enumerate_shapes(n)
    else:
        rng = np.random.default_rng(seed)
        shapes = sample_shapes(n, sample, rng, rectangular_probability=None)
    return kernel_census(shapes)
